// ArrayRegistry: named, concurrently readable smart-array slots whose
// storage can be swapped out from under readers by the adaptation daemon.
//
// The paper's §6 adaptivity restructures an array "on the fly"; in the seed
// implementation that swap is only safe because the benchmark loop owns the
// array exclusively. The registry makes the swap safe under traffic, in the
// LLAMA shape of a stable array identity decoupled from a swappable layout:
//
//   * An ArraySlot is the stable identity (name, length). Its current
//     representation is an immutable ArrayVersion published through one
//     atomic pointer.
//   * Readers call Acquire() and get an ArraySnapshot: an epoch pin plus
//     the version pointer. Acquisition is a couple of atomic operations
//     (EpochManager::Pin + one acquire load) — no locks on the hot path.
//     Everything read through a snapshot comes from one version: a
//     concurrent restructure is invisible until the next Acquire.
//   * A publisher (the AdaptationDaemon) swaps the pointer and retires the
//     old version to the epoch garbage list; it is freed only once every
//     pin taken before the swap has been released (epoch.h).
//   * Writers serialize on a per-slot mutex against publication, so a
//     restructure never loses a committed write: Publish aborts when writes
//     raced the rebuild. Reads stay lock-free throughout — the runtime is
//     built for the paper's read-only/read-mostly analytics arrays.
//
// Multi-tenant scale (10⁴–10⁵ slots, hundreds of client threads) adds a
// second axis: the control plane itself is sharded. Slot names hash to one
// of `Options::num_shards` shards; each shard owns an independent mutex +
// name map (Create/Open contention domain), an independent epoch domain
// (pin arrays and TryReclaim never scan other shards' readers), a published
// open-addressed hash table for lock-free by-name acquisition, and an
// intrusive MPSC queue of slots with undrained workload samples (what the
// daemon workers consume). A single-shard registry (the default) keeps the
// seed's behavior and cost model exactly.
//
// Snapshots also sample the workload (sequential vs random reads, writes)
// into per-slot counters; the daemon drains them to drive the §6 selector.
#ifndef SA_RUNTIME_REGISTRY_H_
#define SA_RUNTIME_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "platform/topology.h"
#include "runtime/epoch.h"
#include "smart/dispatch.h"
#include "smart/smart_array.h"

namespace sa::runtime {

class ArraySlot;
class ArrayRegistry;
class AdaptationDaemon;
struct RegistryShard;
struct SlotAuditState;

// One published representation of a slot's contents. Immutable once
// published except through ArraySlot::Write (which serializes with
// publication); `sequence` increments with every restructure.
struct ArrayVersion {
  std::unique_ptr<smart::SmartArray> storage;
  uint64_t sequence = 0;
  // Snapshot-construction fast path, filled when the version is published:
  // the codec is fixed per version, and for placement-invariant storage
  // (everything except kReplicated) so is the replica pointer. Binding
  // both here lets a snapshot build off this one cache line without
  // touching the SmartArray header.
  const uint64_t* fixed_replica = nullptr;  // nullptr => resolve per thread
  const smart::CodecOps* codec = nullptr;
  // Copied from Options::counter_flush_sample_shift so a snapshot learns
  // its flush policy from the version line it reads anyway.
  uint32_t flush_shift = 0;
};

// Interval sample of a slot's workload counters (drained by the daemon).
struct SlotSample {
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t writes = 0;
  uint64_t pins = 0;
  // Pushdown-scan workload: elements covered by snapshot predicate scans
  // and how many of them matched. Their ratio is the observed selectivity
  // the §6 selector uses to judge encodings that accelerate scans.
  uint64_t predicate_elems = 0;
  uint64_t predicate_matches = 0;
  double seconds = 0.0;

  uint64_t reads() const { return sequential_reads + random_reads; }
  // Observed predicate selectivity in [0,1]; negative when no scans ran.
  double predicate_selectivity() const {
    if (predicate_elems == 0) return -1.0;
    return static_cast<double>(predicate_matches) / static_cast<double>(predicate_elems);
  }
};

// A consistent, immutable view of one slot's contents. Move-only RAII:
// holds an epoch pin; releasing the snapshot (destructor) unpins and
// flushes the locally accumulated access counters to the slot. Cheap to
// acquire and intended to be short-lived (a pinned snapshot blocks storage
// reclamation, never publication).
//
// A default-constructed snapshot is invalid (valid() == false): that is
// what TryAcquire/AcquireByName return when the slot's epoch domain is
// saturated or the name is unknown — admission control surfaces as a
// rejected acquire, not an abort.
class ArraySnapshot {
 public:
  ArraySnapshot() = default;
  ArraySnapshot(ArraySnapshot&& other) noexcept;
  ArraySnapshot& operator=(ArraySnapshot&& other) noexcept;
  ~ArraySnapshot() { Release(); }

  ArraySnapshot(const ArraySnapshot&) = delete;
  ArraySnapshot& operator=(const ArraySnapshot&) = delete;

  bool valid() const { return version_ != nullptr; }

  const smart::SmartArray& array() const { return *version_->storage; }
  uint64_t length() const { return version_->storage->length(); }
  uint32_t bits() const { return version_->storage->bits(); }
  // Restructure generation this snapshot observes (0 = initial storage).
  uint64_t sequence() const { return version_->sequence; }

  // Element read from this snapshot's version (never sees a concurrent
  // restructure). Classified sequential/random for the workload counters.
  uint64_t Get(uint64_t index) {
    if (index == prev_index_plus_one_) {
      ++local_sequential_;
    } else {
      ++local_random_;
    }
    prev_index_plus_one_ = index + 1;
    // codec_ is bound only for bit-packed storage; other encodings (§6's
    // frame-of-reference arrays) answer through the virtual interface.
    if (codec_ != nullptr) return codec_->get(replica_, index);
    return version_->storage->Get(index, replica_);
  }

  // Sum of elements in [begin, end) through the chunk-granular block
  // kernels (counted as a sequential scan of the range).
  uint64_t SumRange(uint64_t begin, uint64_t end);

  // ---- pushdown scans (zone-map skipping + calibrated match kernels) ----
  // All three account the covered range as a sequential scan and feed the
  // slot's predicate-selectivity counters, which the daemon reads as a §6
  // hint. Like Get, not safe to call concurrently on one snapshot.
  uint64_t CountIf(uint64_t begin, uint64_t end, smart::Predicate p);
  // Bitmap semantics follow SmartArray::SelectIf: bit j of bitmap describes
  // element begin+j; the caller supplies (end-begin+63)/64 words.
  uint64_t SelectIf(uint64_t begin, uint64_t end, smart::Predicate p, uint64_t* bitmap);
  uint64_t FilteredSum(uint64_t begin, uint64_t end, smart::Predicate p);

  // Bulk workload accounting for kernels that stream this snapshot's pinned
  // storage directly (graph traversals read raw replica pointers, so the
  // per-element Get classification never sees their accesses). Adds to the
  // locally accumulated counters flushed on Release. Like Get, not safe to
  // call concurrently on one snapshot — parallel kernels reduce their
  // per-worker tallies first and account once.
  void AccountReads(uint64_t sequential, uint64_t random) {
    local_sequential_ += sequential;
    local_random_ += random;
  }

  // Releases the pin early (destructor becomes a no-op).
  void Release();

 private:
  friend class ArraySlot;
  friend class ArrayRegistry;
  ArraySnapshot(ArraySlot* slot, const ArrayVersion* version, EpochManager::PinHandle pin);

  ArraySlot* slot_ = nullptr;  // null once released / moved from
  const ArrayVersion* version_ = nullptr;
  const uint64_t* replica_ = nullptr;
  const smart::CodecOps* codec_ = nullptr;
  EpochManager::PinHandle pin_;
  uint64_t prev_index_plus_one_ = ~uint64_t{0};
  uint64_t local_sequential_ = 0;
  uint64_t local_random_ = 0;
  uint64_t local_predicate_elems_ = 0;
  uint64_t local_predicate_matches_ = 0;
  uint32_t flush_shift_ = 0;  // copied from the version at construction
};

class ArraySlot {
 public:
  const std::string& name() const { return name_; }
  uint64_t length() const { return length_; }

  // Current representation (racy by nature: the daemon may republish at any
  // time; use a snapshot for consistent multi-call reads).
  uint32_t bits() const { return Current()->storage->bits(); }
  smart::PlacementSpec placement() const { return Current()->storage->placement(); }
  uint64_t sequence() const { return Current()->sequence; }

  // Logical value width the slot was declared with (Create's `bits`, or the
  // last explicit RedeclareBits). FetchAdd wraps at this width regardless
  // of how narrow the live storage currently is, so arithmetic semantics
  // survive daemon restructures.
  uint32_t declared_bits() const {
    return declared_bits_.load(std::memory_order_relaxed);
  }
  void RedeclareBits(uint32_t bits);

  // The epoch domain this slot pins and retires through (its shard's).
  EpochManager& epoch() const { return *epoch_; }

  // Lock-free snapshot acquisition — the reader hot path.
  ArraySnapshot Acquire();

  // Like Acquire(), but returns an invalid snapshot instead of aborting
  // when the slot's epoch domain has no free pin slots.
  ArraySnapshot TryAcquire();

  // Element write into the current representation (every replica). Writers
  // serialize on a per-slot mutex against each other and against
  // publication; the value must fit the *data* width the slot was created
  // with (a concurrent restructure may have narrowed the storage to the
  // observed data width, so writes are checked against the live width).
  void Write(uint64_t index, uint64_t value);

  // Failable Write: false when `value` does not fit the live storage width
  // (the admissible outcome under open-loop traffic; Write aborts instead).
  bool TryWrite(uint64_t index, uint64_t value);

  // Atomic-with-respect-to-writers read-modify-write: returns the old value
  // and stores (old + delta) wrapped at declared_bits(). Aborts when the
  // wrapped result does not fit the live storage width.
  uint64_t FetchAdd(uint64_t index, uint64_t delta);

  // Failable FetchAdd: stores nothing and returns false on live-storage
  // overflow; otherwise *old_value gets the previous value.
  bool TryFetchAdd(uint64_t index, uint64_t delta, uint64_t* old_value);

  // ---- workload counters ----
  uint64_t write_count() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t read_count() const {
    return sequential_reads_.load(std::memory_order_relaxed) +
           random_reads_.load(std::memory_order_relaxed);
  }
  // Widest value ever stored through Write (bits); the daemon keeps the
  // compressed width at least this wide so racing writes cannot overflow a
  // narrowed rebuild.
  uint32_t max_written_bits() const;

  // §6.1 software hint: the uploader declares bulk population finished and
  // the slot effectively read-only from here on. Writes made before the
  // seal stop counting against the daemon's read-only / mostly-reads hints
  // (a freshly uploaded immutable array would otherwise look write-heavy
  // for its first ~20 read passes and never qualify for replication or
  // compression). Writing after sealing stays legal — this is a hint, not
  // an enforcement point — and re-sealing moves the baseline forward.
  void SealWrites() {
    sealed_writes_.store(writes_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  // Writes since the last SealWrites() (all writes when never sealed).
  uint64_t unsealed_write_count() const {
    return writes_.load(std::memory_order_relaxed) -
           sealed_writes_.load(std::memory_order_relaxed);
  }

  // Counters accumulated since the previous drain, with the elapsed wall
  // time. Single consumer (the daemon).
  SlotSample DrainSample();
  // Lifetime totals (for the §6.1 pass-amortization hints).
  SlotSample LifetimeSample() const;

  // ---- decision audit (runtime/audit.h) ----
  // nullptr until the daemon records the slot's first decision. Readers
  // (explain CLI/C-ABI/testkit) take audit()->mu before touching the ring.
  SlotAuditState* audit() const { return audit_.load(std::memory_order_acquire); }
  // Allocates the audit state on first use (safe against concurrent callers).
  SlotAuditState& EnsureAudit();

  ~ArraySlot();

 private:
  friend class ArrayRegistry;
  friend class ArraySnapshot;
  friend class AdaptationDaemon;
  friend struct RegistryShard;

  ArraySlot(std::string name, uint64_t length, EpochManager* epoch);

  const ArrayVersion* Current() const {
    return current_.load(std::memory_order_acquire);
  }

  ArraySnapshot MakeSnapshot(EpochManager::PinHandle pin);

  void FlushSnapshotCounters(uint64_t sequential, uint64_t random, uint64_t pins,
                             uint64_t predicate_elems, uint64_t predicate_matches);

  // Pushes this slot onto its shard's undrained-sample queue unless it is
  // already queued. One relaxed load on the repeat path; at most one
  // exchange + CAS per daemon drain interval per slot.
  void EnqueueForSampling();

  // Write/FetchAdd bookkeeping shared by the checked and Try variants;
  // caller holds write_mu_.
  void CommitWriteLocked(const ArrayVersion* version, uint64_t index, uint64_t value);

  // Acquire-path fields first: a by-name hit compares name_, then loads
  // current_ and touches epoch_ — keeping all three inside the first 64
  // bytes makes a cold acquire one slot-object cache miss instead of two.
  // The second line holds everything an acquire/release pair increments
  // (workload counters + sample-queue linkage), so snapshot bookkeeping
  // stays within one further line.
  std::string name_;
  std::atomic<ArrayVersion*> current_{nullptr};
  EpochManager* epoch_ = nullptr;
  uint64_t length_ = 0;
  uint64_t name_hash_ = 0;

  std::atomic<uint64_t> sequential_reads_{0};
  std::atomic<uint64_t> random_reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> predicate_elems_{0};
  std::atomic<uint64_t> predicate_matches_{0};
  // Intrusive MPSC sample-queue linkage (head lives on the shard).
  std::atomic<bool> queued_{false};
  std::atomic<ArraySlot*> next_queued_{nullptr};

  RegistryShard* shard_ = nullptr;
  std::atomic<uint32_t> declared_bits_{64};
  uint32_t flush_shift_ = 0;  // registry's counter_flush_sample_shift

  // Serializes writers against each other and against Publish.
  std::mutex write_mu_;
  std::atomic<uint64_t> max_written_{0};  // updated under write_mu_
  // Write-count baseline set by SealWrites(); writes at or below it are
  // upload traffic the adaptation hints ignore.
  std::atomic<uint64_t> sealed_writes_{0};

  // Daemon-side drain bookkeeping (single consumer).
  SlotSample drained_{};
  std::chrono::steady_clock::time_point last_drain_;

  // Decision audit ring + calibration state; allocated by EnsureAudit on
  // the first recorded decision, owned by the slot (freed in ~ArraySlot).
  std::atomic<SlotAuditState*> audit_{nullptr};
};

class ArrayRegistry {
 public:
  struct Options {
    // Rounded up to a power of two. 1 (the default) preserves the seed's
    // single contention domain: one mutex, one name map, one epoch domain.
    int num_shards = 1;
    // Pin-slot budget per shard epoch domain (max simultaneous pins).
    int pin_slots_per_shard = EpochManager::kDefaultSlots;
    // Sampled telemetry: when nonzero, a snapshot flushes its access
    // counters to the slot only on every 2^shift-th release (per thread),
    // scaled by 2^shift so the expectation stays exact. Keeps the shared
    // counter cache line off most acquire/release pairs. 0 = flush every
    // release (exact counts — what the daemon threshold tests rely on).
    uint32_t counter_flush_sample_shift = 0;
  };

  explicit ArrayRegistry(const platform::Topology& topology)
      : ArrayRegistry(topology, Options{}) {}
  ArrayRegistry(const platform::Topology& topology, Options options);
  ~ArrayRegistry();

  ArrayRegistry(const ArrayRegistry&) = delete;
  ArrayRegistry& operator=(const ArrayRegistry&) = delete;

  // Creates a named slot with freshly allocated storage. Aborts on
  // duplicate names. Control path (per-shard mutex).
  ArraySlot* Create(std::string_view name, uint64_t length, smart::PlacementSpec placement,
                    uint32_t bits);

  // Looks a slot up by name; nullptr when absent. Control path.
  ArraySlot* Open(std::string_view name) const;

  // The by-name reader hot path: hashes `name` once, pins the owning
  // shard's epoch, and probes the shard's published open-addressed table
  // under that pin — no mutex, no std::string construction, no std::map.
  // Invalid snapshot when the name is unknown or the shard's pin slots are
  // exhausted (kSnapshotAcquireRejects counts the latter).
  ArraySnapshot AcquireByName(std::string_view name);

  std::vector<ArraySlot*> slots() const;
  size_t size() const;

  // Atomically replaces `slot`'s storage with `storage` and retires the old
  // version to the epoch garbage list. `writes_before` is the slot's
  // write_count() observed before the rebuild that produced `storage`
  // started: when writes have happened since, the rebuild may have missed
  // them, so the publish is refused (returns false, `storage` is dropped)
  // and the caller retries with a fresh rebuild. `trace_id` is the
  // publisher's per-adaptation trace id (0 = untracked): it links the
  // publish and the eventual version_reclaim trace events to the decision
  // that caused them. On success `published_sequence` (when non-null)
  // receives the new version's sequence — the authoritative value for audit
  // records, since a racing publish may have advanced the slot past the
  // sequence the rebuild started from.
  bool Publish(ArraySlot& slot, std::unique_ptr<smart::SmartArray> storage,
               uint64_t writes_before, uint64_t trace_id = 0,
               uint64_t* published_sequence = nullptr);

  // Frees retired storage whose epochs have fully drained across every
  // shard; returns the number of versions reclaimed.
  size_t Reclaim();

  // ---- shard plane (daemon workers, stats exposition, tests) ----
  int num_shards() const { return num_shards_; }
  EpochManager& shard_epoch(int shard);
  size_t shard_retired(int shard) const;
  int64_t shard_queue_depth(int shard) const;
  // Due-time cell the daemon worker set claims shards through (epoch ns).
  std::atomic<uint64_t>& shard_next_due(int shard);
  // Takes every slot currently queued with undrained samples on `shard`
  // (single consumer per shard: the claiming daemon worker).
  std::vector<ArraySlot*> DrainSampleQueue(int shard);
  // Slots owned by `shard` (control path; used by synchronous RunOnce).
  std::vector<ArraySlot*> shard_slots(int shard) const;
  size_t ReclaimShard(int shard);
  // Smallest epoch across shards (a conservative progress indicator for
  // the C ABI's saRegistryEpoch).
  uint64_t min_epoch() const;

  // Legacy single-domain accessor; only meaningful (and only allowed) on a
  // single-shard registry.
  EpochManager& epoch();
  const platform::Topology& topology() const { return topology_; }

 private:
  RegistryShard& ShardFor(uint64_t hash) const;

  platform::Topology topology_;
  int num_shards_ = 1;
  int shard_bits_ = 0;  // log2(num_shards_): table probes skip these bits
  uint32_t flush_shift_ = 0;
  std::vector<std::unique_ptr<RegistryShard>> shards_;
};

namespace testing {

// Test-only seam: `hook` runs at the top of every ArrayRegistry::Publish,
// before the lost-write check and outside the slot's write mutex. The
// testkit installs a hook that performs a racing ArraySlot::Write so the
// publish-refusal (lost-write) path is exercised deterministically; pass
// nullptr to clear. Not for production use.
void SetPrePublishHook(std::function<void(ArraySlot&)> hook);

}  // namespace testing

}  // namespace sa::runtime

#endif  // SA_RUNTIME_REGISTRY_H_
