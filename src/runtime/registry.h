// ArrayRegistry: named, concurrently readable smart-array slots whose
// storage can be swapped out from under readers by the adaptation daemon.
//
// The paper's §6 adaptivity restructures an array "on the fly"; in the seed
// implementation that swap is only safe because the benchmark loop owns the
// array exclusively. The registry makes the swap safe under traffic, in the
// LLAMA shape of a stable array identity decoupled from a swappable layout:
//
//   * An ArraySlot is the stable identity (name, length). Its current
//     representation is an immutable ArrayVersion published through one
//     atomic pointer.
//   * Readers call Acquire() and get an ArraySnapshot: an epoch pin plus
//     the version pointer. Acquisition is a couple of atomic operations
//     (EpochManager::Pin + one acquire load) — no locks on the hot path.
//     Everything read through a snapshot comes from one version: a
//     concurrent restructure is invisible until the next Acquire.
//   * A publisher (the AdaptationDaemon) swaps the pointer and retires the
//     old version to the epoch garbage list; it is freed only once every
//     pin taken before the swap has been released (epoch.h).
//   * Writers serialize on a per-slot mutex against publication, so a
//     restructure never loses a committed write: Publish aborts when writes
//     raced the rebuild. Reads stay lock-free throughout — the runtime is
//     built for the paper's read-only/read-mostly analytics arrays.
//
// Snapshots also sample the workload (sequential vs random reads, writes)
// into per-slot counters; the daemon drains them to drive the §6 selector.
#ifndef SA_RUNTIME_REGISTRY_H_
#define SA_RUNTIME_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "platform/topology.h"
#include "runtime/epoch.h"
#include "smart/dispatch.h"
#include "smart/smart_array.h"

namespace sa::runtime {

class ArraySlot;
class ArrayRegistry;
class AdaptationDaemon;

// One published representation of a slot's contents. Immutable once
// published except through ArraySlot::Write (which serializes with
// publication); `sequence` increments with every restructure.
struct ArrayVersion {
  std::unique_ptr<smart::SmartArray> storage;
  uint64_t sequence = 0;
};

// Interval sample of a slot's workload counters (drained by the daemon).
struct SlotSample {
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t writes = 0;
  uint64_t pins = 0;
  double seconds = 0.0;

  uint64_t reads() const { return sequential_reads + random_reads; }
};

// A consistent, immutable view of one slot's contents. Move-only RAII:
// holds an epoch pin; releasing the snapshot (destructor) unpins and
// flushes the locally accumulated access counters to the slot. Cheap to
// acquire and intended to be short-lived (a pinned snapshot blocks storage
// reclamation, never publication).
class ArraySnapshot {
 public:
  ArraySnapshot(ArraySnapshot&& other) noexcept;
  ArraySnapshot& operator=(ArraySnapshot&& other) noexcept;
  ~ArraySnapshot() { Release(); }

  ArraySnapshot(const ArraySnapshot&) = delete;
  ArraySnapshot& operator=(const ArraySnapshot&) = delete;

  const smart::SmartArray& array() const { return *version_->storage; }
  uint64_t length() const { return version_->storage->length(); }
  uint32_t bits() const { return version_->storage->bits(); }
  // Restructure generation this snapshot observes (0 = initial storage).
  uint64_t sequence() const { return version_->sequence; }

  // Element read from this snapshot's version (never sees a concurrent
  // restructure). Classified sequential/random for the workload counters.
  uint64_t Get(uint64_t index) {
    if (index == prev_index_plus_one_) {
      ++local_sequential_;
    } else {
      ++local_random_;
    }
    prev_index_plus_one_ = index + 1;
    return codec_->get(replica_, index);
  }

  // Sum of elements in [begin, end) through the chunk-granular block
  // kernels (counted as a sequential scan of the range).
  uint64_t SumRange(uint64_t begin, uint64_t end);

  // Releases the pin early (destructor becomes a no-op).
  void Release();

 private:
  friend class ArraySlot;
  ArraySnapshot(ArraySlot* slot, const ArrayVersion* version, EpochManager::PinHandle pin);

  ArraySlot* slot_ = nullptr;  // null once released / moved from
  const ArrayVersion* version_ = nullptr;
  const uint64_t* replica_ = nullptr;
  const smart::CodecOps* codec_ = nullptr;
  EpochManager::PinHandle pin_;
  uint64_t prev_index_plus_one_ = ~uint64_t{0};
  uint64_t local_sequential_ = 0;
  uint64_t local_random_ = 0;
};

class ArraySlot {
 public:
  const std::string& name() const { return name_; }
  uint64_t length() const { return length_; }

  // Current representation (racy by nature: the daemon may republish at any
  // time; use a snapshot for consistent multi-call reads).
  uint32_t bits() const { return Current()->storage->bits(); }
  smart::PlacementSpec placement() const { return Current()->storage->placement(); }
  uint64_t sequence() const { return Current()->sequence; }

  // Lock-free snapshot acquisition — the reader hot path.
  ArraySnapshot Acquire();

  // Element write into the current representation (every replica). Writers
  // serialize on a per-slot mutex against each other and against
  // publication; the value must fit the *data* width the slot was created
  // with (a concurrent restructure may have narrowed the storage to the
  // observed data width, so writes are checked against the live width).
  void Write(uint64_t index, uint64_t value);

  // ---- workload counters ----
  uint64_t write_count() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t read_count() const {
    return sequential_reads_.load(std::memory_order_relaxed) +
           random_reads_.load(std::memory_order_relaxed);
  }
  // Widest value ever stored through Write (bits); the daemon keeps the
  // compressed width at least this wide so racing writes cannot overflow a
  // narrowed rebuild.
  uint32_t max_written_bits() const;

  // Counters accumulated since the previous drain, with the elapsed wall
  // time. Single consumer (the daemon).
  SlotSample DrainSample();
  // Lifetime totals (for the §6.1 pass-amortization hints).
  SlotSample LifetimeSample() const;

 private:
  friend class ArrayRegistry;
  friend class ArraySnapshot;
  friend class AdaptationDaemon;

  ArraySlot(std::string name, uint64_t length, EpochManager* epoch);

  const ArrayVersion* Current() const {
    return current_.load(std::memory_order_acquire);
  }

  void FlushSnapshotCounters(uint64_t sequential, uint64_t random);

  std::string name_;
  uint64_t length_ = 0;
  EpochManager* epoch_ = nullptr;
  std::atomic<ArrayVersion*> current_{nullptr};

  // Serializes writers against each other and against Publish.
  std::mutex write_mu_;
  std::atomic<uint64_t> max_written_{0};  // updated under write_mu_

  std::atomic<uint64_t> sequential_reads_{0};
  std::atomic<uint64_t> random_reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> pins_{0};

  // Daemon-side drain bookkeeping (single consumer).
  SlotSample drained_{};
  std::chrono::steady_clock::time_point last_drain_;
};

class ArrayRegistry {
 public:
  explicit ArrayRegistry(const platform::Topology& topology);
  ~ArrayRegistry();

  ArrayRegistry(const ArrayRegistry&) = delete;
  ArrayRegistry& operator=(const ArrayRegistry&) = delete;

  // Creates a named slot with freshly allocated storage. Aborts on
  // duplicate names. Control path (mutex-protected).
  ArraySlot* Create(const std::string& name, uint64_t length, smart::PlacementSpec placement,
                    uint32_t bits);

  // Looks a slot up by name; nullptr when absent. Control path.
  ArraySlot* Open(const std::string& name) const;

  std::vector<ArraySlot*> slots() const;
  size_t size() const;

  // Atomically replaces `slot`'s storage with `storage` and retires the old
  // version to the epoch garbage list. `writes_before` is the slot's
  // write_count() observed before the rebuild that produced `storage`
  // started: when writes have happened since, the rebuild may have missed
  // them, so the publish is refused (returns false, `storage` is dropped)
  // and the caller retries with a fresh rebuild.
  bool Publish(ArraySlot& slot, std::unique_ptr<smart::SmartArray> storage,
               uint64_t writes_before);

  // Frees retired storage whose epochs have fully drained; returns the
  // number of versions reclaimed.
  size_t Reclaim() { return epoch_.TryReclaim(); }

  EpochManager& epoch() { return epoch_; }
  const platform::Topology& topology() const { return topology_; }

 private:
  platform::Topology topology_;
  EpochManager epoch_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ArraySlot>> slots_;
};

namespace testing {

// Test-only seam: `hook` runs at the top of every ArrayRegistry::Publish,
// before the lost-write check and outside the slot's write mutex. The
// testkit installs a hook that performs a racing ArraySlot::Write so the
// publish-refusal (lost-write) path is exercised deterministically; pass
// nullptr to clear. Not for production use.
void SetPrePublishHook(std::function<void(ArraySlot&)> hook);

}  // namespace testing

}  // namespace sa::runtime

#endif  // SA_RUNTIME_REGISTRY_H_
