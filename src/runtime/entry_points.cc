#include "runtime/entry_points.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "adapt/decision_record.h"
#include "common/macros.h"
#include "rts/worker_pool.h"
#include "runtime/audit.h"
#include "runtime/daemon.h"
#include "runtime/registry.h"
#include "sim/cost_model.h"
#include "sim/machine_spec.h"

namespace {

using sa::runtime::AdaptationDaemon;
using sa::runtime::ArrayRegistry;
using sa::runtime::ArraySlot;
using sa::runtime::ArraySnapshot;

// Everything a foreign client needs behind one handle: the topology and
// worker pool the registry's rebuilds run on, plus the optional daemon.
struct RegistryHandle {
  std::unique_ptr<sa::platform::Topology> topology;
  std::unique_ptr<sa::rts::WorkerPool> pool;
  std::unique_ptr<ArrayRegistry> registry;
  std::unique_ptr<AdaptationDaemon> daemon;
  // Machine caps default to the paper's 18-core box; overridable via
  // saRegistryConfigureMachine before the daemon first exists.
  sa::adapt::MachineCaps machine =
      sa::adapt::MachineCaps::FromSpec(sa::sim::MachineSpec::OracleX5_18Core());

  AdaptationDaemon& Daemon(sa::runtime::DaemonOptions options) {
    if (daemon == nullptr) {
      daemon = std::make_unique<AdaptationDaemon>(
          *registry, *pool, machine,
          sa::adapt::ArrayCosts::FromCostModel(sa::sim::CostModel::Default()), options);
    }
    return *daemon;
  }
};

RegistryHandle* Reg(void* reg) { return static_cast<RegistryHandle*>(reg); }
ArraySlot* Slot(void* slot) { return static_cast<ArraySlot*>(slot); }
const ArraySlot* Slot(const void* slot) { return static_cast<const ArraySlot*>(slot); }
ArraySnapshot* Snap(void* snap) { return static_cast<ArraySnapshot*>(snap); }
const ArraySnapshot* Snap(const void* snap) { return static_cast<const ArraySnapshot*>(snap); }

}  // namespace

extern "C" {

void* saRegistryCreate(int sockets, int cpus_per_socket) {
  return saRegistryCreateSharded(sockets, cpus_per_socket, 1);
}

void* saRegistryCreateSharded(int sockets, int cpus_per_socket, int shards) {
  auto* handle = new RegistryHandle;
  handle->topology = std::make_unique<sa::platform::Topology>(
      sockets <= 0 ? sa::platform::Topology::Host()
                   : sa::platform::Topology::Synthetic(sockets, cpus_per_socket));
  handle->pool = std::make_unique<sa::rts::WorkerPool>(
      *handle->topology,
      sa::rts::WorkerPool::Options{.num_threads = 0,
                                   .pin_threads = handle->topology->is_host()});
  ArrayRegistry::Options options;
  options.num_shards = shards < 1 ? 1 : shards;
  handle->registry = std::make_unique<ArrayRegistry>(*handle->topology, options);
  return handle;
}

void saRegistryFree(void* reg) {
  RegistryHandle* handle = Reg(reg);
  if (handle == nullptr) {
    return;
  }
  if (handle->daemon != nullptr) {
    handle->daemon->Stop();
  }
  delete handle;
}

void* saRegistryDefine(void* reg, const char* name, uint64_t length, int replicated,
                       int interleaved, int pinned, uint32_t bits) {
  SA_CHECK_MSG(!(replicated && interleaved), "data placements cannot be combined");
  SA_CHECK_MSG(!((replicated || interleaved) && pinned >= 0),
               "data placements cannot be combined");
  sa::smart::PlacementSpec placement = sa::smart::PlacementSpec::OsDefault();
  if (replicated) {
    placement = sa::smart::PlacementSpec::Replicated();
  } else if (interleaved) {
    placement = sa::smart::PlacementSpec::Interleaved();
  } else if (pinned >= 0) {
    placement = sa::smart::PlacementSpec::SingleSocket(pinned);
  }
  return Reg(reg)->registry->Create(name, length, placement, bits);
}

void* saRegistryOpen(void* reg, const char* name) { return Reg(reg)->registry->Open(name); }

int saRegistryCount(void* reg) { return static_cast<int>(Reg(reg)->registry->size()); }

uint64_t saRegistryReclaim(void* reg) { return Reg(reg)->registry->Reclaim(); }

uint64_t saRegistryEpoch(void* reg) { return Reg(reg)->registry->min_epoch(); }

int saRegistryShards(void* reg) { return Reg(reg)->registry->num_shards(); }

int64_t saRegistryShardQueueDepth(void* reg, int shard) {
  ArrayRegistry& registry = *Reg(reg)->registry;
  if (shard < 0 || shard >= registry.num_shards()) {
    return -1;
  }
  return registry.shard_queue_depth(shard);
}

int64_t saRegistryShardRetired(void* reg, int shard) {
  ArrayRegistry& registry = *Reg(reg)->registry;
  if (shard < 0 || shard >= registry.num_shards()) {
    return -1;
  }
  return static_cast<int64_t>(registry.shard_retired(shard));
}

void* saRegistryAcquire(void* reg, const char* name) {
  ArraySnapshot snapshot = Reg(reg)->registry->AcquireByName(name);
  if (!snapshot.valid()) {
    return nullptr;
  }
  return new ArraySnapshot(std::move(snapshot));
}

void saRegistryConfigureMachine(void* reg, double mem_bytes_per_socket,
                                double exec_cycles_per_socket, double bw_memory,
                                double bw_interconnect) {
  RegistryHandle* handle = Reg(reg);
  SA_CHECK_MSG(handle->daemon == nullptr,
               "configure the machine before the daemon first runs");
  if (mem_bytes_per_socket > 0.0) {
    handle->machine.mem_bytes_per_socket = mem_bytes_per_socket;
  }
  if (exec_cycles_per_socket > 0.0) {
    handle->machine.exec_max_per_socket = exec_cycles_per_socket;
  }
  if (bw_memory > 0.0) {
    handle->machine.bw_max_memory = bw_memory;
  }
  if (bw_interconnect > 0.0) {
    handle->machine.bw_max_interconnect = bw_interconnect;
  }
}

void saRegistryDaemonStart(void* reg, double interval_ms, double min_predicted_win) {
  saRegistryDaemonStartWorkers(reg, interval_ms, min_predicted_win, 1);
}

void saRegistryDaemonStartWorkers(void* reg, double interval_ms, double min_predicted_win,
                                  int workers) {
  sa::runtime::DaemonOptions options;
  if (interval_ms > 0.0) {
    options.interval = std::chrono::milliseconds(static_cast<int64_t>(interval_ms));
  }
  if (min_predicted_win >= 0.0) {
    options.min_predicted_win = min_predicted_win;
  }
  options.num_workers = workers < 1 ? 1 : workers;
  Reg(reg)->Daemon(options).Start();
}

void saRegistryDaemonStop(void* reg) {
  RegistryHandle* handle = Reg(reg);
  if (handle->daemon != nullptr) {
    handle->daemon->Stop();
  }
}

int saRegistryAdaptOnce(void* reg) { return Reg(reg)->Daemon({}).RunOnce(); }

uint64_t saRegistryAdaptations(void* reg) {
  RegistryHandle* handle = Reg(reg);
  return handle->daemon == nullptr ? 0 : handle->daemon->adaptations();
}

uint64_t saSlotLength(const void* slot) { return Slot(slot)->length(); }
uint32_t saSlotBits(const void* slot) { return Slot(slot)->bits(); }
int saSlotIsReplicated(const void* slot) {
  return Slot(slot)->placement().kind == sa::smart::Placement::kReplicated ? 1 : 0;
}
uint64_t saSlotSequence(const void* slot) { return Slot(slot)->sequence(); }

void saSlotWrite(void* slot, uint64_t index, uint64_t value) {
  Slot(slot)->Write(index, value);
}

uint64_t saSlotFetchAdd(void* slot, uint64_t index, uint64_t delta) {
  return Slot(slot)->FetchAdd(index, delta);
}

namespace {

void FlattenDecision(const sa::adapt::DecisionRecord& r, SaSlotDecision* out) {
  SaSlotDecision& d = *out;
  d = SaSlotDecision{};
  d.trace_id = r.trace_id;
  d.ns = r.ns;
  d.reason = static_cast<uint32_t>(r.reason);
  d.published = r.published ? 1 : 0;
  d.published_sequence = r.published_sequence;
  d.packed_current = sa::adapt::PackConfigWord(r.current, r.current_bits);
  d.packed_chosen = sa::adapt::PackConfigWord(r.chosen, r.chosen_bits);
  d.current_speedup = r.current_speedup;
  d.chosen_speedup = r.chosen_speedup;
  d.margin = r.margin;
  d.predicted_win = r.predicted_win;
  d.num_candidates = static_cast<uint32_t>(
      std::min(r.num_candidates, sa::adapt::DecisionRecord::kMaxCandidates));
  for (uint32_t c = 0; c < d.num_candidates; ++c) {
    d.candidate_config[c] =
        sa::adapt::PackConfigWord(r.candidates[c].config, r.candidates[c].bits);
    d.candidate_speedup[c] = r.candidates[c].estimated_speedup;
    std::snprintf(d.candidate_role[c], sizeof(d.candidate_role[c]), "%s",
                  r.candidates[c].role);
  }
  d.in_accesses_per_second = r.inputs.counters.accesses_per_second;
  d.in_random_fraction = r.inputs.counters.random_fraction;
  d.in_mem_utilization = r.inputs.counters.max_mem_utilization;
  d.in_ic_utilization = r.inputs.counters.max_ic_utilization;
  d.in_compression_ratio = r.inputs.compression_ratio;
  d.in_for_delta_ratio = r.inputs.for_delta_ratio;
  d.in_read_only = r.inputs.hints.read_only ? 1 : 0;
  d.in_mostly_reads = r.inputs.hints.mostly_reads ? 1 : 0;
  d.scored = r.scored ? 1 : 0;
  d.pre_rate = r.pre_rate;
  d.post_rate = r.post_rate;
  d.predicted_ratio = r.predicted_ratio;
  d.realized_ratio = r.realized_ratio;
  d.calibration_error = r.calibration_error;
}

}  // namespace

uint64_t saSlotExplain(void* slot, SaSlotDecision* out, uint64_t cap) {
  sa::runtime::SlotAuditState* audit = Slot(slot)->audit();
  if (audit == nullptr) {
    return 0;
  }
  sa::adapt::DecisionRecord records[sa::runtime::SlotAuditState::kRingSize];
  uint64_t total = 0;
  int copied = 0;
  {
    std::lock_guard<std::mutex> lock(audit->mu);
    total = audit->decisions;
    copied = audit->Copy(records, sa::runtime::SlotAuditState::kRingSize);
  }
  const uint64_t n = std::min<uint64_t>(cap, static_cast<uint64_t>(copied));
  for (uint64_t i = 0; i < n; ++i) {
    FlattenDecision(records[i], &out[i]);
  }
  return total;
}

uint32_t saSlotExplainPublished(void* slot, SaSlotDecision* out) {
  sa::runtime::SlotAuditState* audit = Slot(slot)->audit();
  if (audit == nullptr) {
    return 0;
  }
  sa::adapt::DecisionRecord record;
  {
    std::lock_guard<std::mutex> lock(audit->mu);
    if (!audit->has_last_published) {
      return 0;
    }
    record = audit->last_published;
  }
  if (out != nullptr) {
    FlattenDecision(record, out);
  }
  return 1;
}

void* saSlotPin(void* slot) { return new ArraySnapshot(Slot(slot)->Acquire()); }

void* saSlotTryPin(void* slot) {
  ArraySnapshot snapshot = Slot(slot)->TryAcquire();
  if (!snapshot.valid()) {
    return nullptr;
  }
  return new ArraySnapshot(std::move(snapshot));
}

void saSnapshotUnpin(void* snap) { delete Snap(snap); }

uint64_t saSnapshotRead(void* snap, uint64_t index) { return Snap(snap)->Get(index); }

uint64_t saSnapshotSumRange(void* snap, uint64_t begin, uint64_t end) {
  return Snap(snap)->SumRange(begin, end);
}

uint64_t saSnapshotCountIf(void* snap, uint64_t begin, uint64_t end, int op,
                           uint64_t constant) {
  SA_CHECK_MSG(op >= 0 && op < 6, "unknown comparison operator");
  return Snap(snap)->CountIf(begin, end, {static_cast<sa::smart::CmpOp>(op), constant});
}

uint64_t saSnapshotSelectIf(void* snap, uint64_t begin, uint64_t end, int op,
                            uint64_t constant, uint64_t* bitmap, uint64_t bitmap_words) {
  SA_CHECK_MSG(op >= 0 && op < 6, "unknown comparison operator");
  SA_CHECK_MSG(begin <= end, "scan range out of bounds");
  const uint64_t n = end - begin;
  if (n == 0) {
    return 0;
  }
  SA_CHECK_MSG(bitmap != nullptr, "selection bitmap must not be null");
  SA_CHECK_MSG(bitmap_words >= (n + sa::kWordBits - 1) / sa::kWordBits,
               "selection bitmap too small for the range");
  return Snap(snap)->SelectIf(begin, end, {static_cast<sa::smart::CmpOp>(op), constant},
                              bitmap);
}

uint64_t saSnapshotFilteredSum(void* snap, uint64_t begin, uint64_t end, int op,
                               uint64_t constant) {
  SA_CHECK_MSG(op >= 0 && op < 6, "unknown comparison operator");
  return Snap(snap)->FilteredSum(begin, end, {static_cast<sa::smart::CmpOp>(op), constant});
}

uint64_t saSnapshotLength(const void* snap) { return Snap(snap)->length(); }
uint32_t saSnapshotBits(const void* snap) { return Snap(snap)->bits(); }
uint64_t saSnapshotSequence(const void* snap) { return Snap(snap)->sequence(); }

}  // extern "C"
