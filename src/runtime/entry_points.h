// C-ABI entry points to the online-adaptation runtime (registry, snapshots,
// daemon) — the §3.2 thin-API pattern applied to the runtime subsystem.
//
// Like smart/entry_points.h, these are exception-free scalar-argument
// boundary functions so MiniVM/interop clients (or any runtime loading the
// library) transparently benefit from online adaptation: a guest language
// opens a named slot, pins a snapshot, reads through it, and never observes
// a restructure in progress.
//
// Handle discipline:
//  * registry handles own a topology, a worker pool, the slot table and an
//    optional daemon; free with saRegistryFree after all snapshots are
//    unpinned and the daemon is stopped.
//  * slot handles are borrowed from the registry (do not free).
//  * snapshot handles own an epoch pin; every saSlotPin must be paired with
//    saSnapshotUnpin, from the same thread that pinned.
#ifndef SA_RUNTIME_ENTRY_POINTS_H_
#define SA_RUNTIME_ENTRY_POINTS_H_

#include <cstdint>

extern "C" {

// ---- Registry lifecycle ----
// sockets == 0 selects the host topology.
void* saRegistryCreate(int sockets, int cpus_per_socket);
// Like saRegistryCreate, with a sharded control plane: slot names hash to
// one of `shards` (rounded up to a power of two) independent contention
// domains — per-shard mutex, name index, and epoch domain. shards <= 1
// behaves exactly like saRegistryCreate.
void* saRegistryCreateSharded(int sockets, int cpus_per_socket, int shards);
void saRegistryFree(void* reg);

// Creates a named array slot. Placement flags mirror saArrayAllocate:
// `pinned` is the target socket or -1; flags are mutually exclusive, none
// selects the OS default policy. Returns a borrowed slot handle.
void* saRegistryDefine(void* reg, const char* name, uint64_t length, int replicated,
                       int interleaved, int pinned, uint32_t bits);

// Looks up a slot by name; NULL when absent. Borrowed handle.
void* saRegistryOpen(void* reg, const char* name);

int saRegistryCount(void* reg);

// Frees retired storage whose reader epochs have drained; returns the
// number of versions reclaimed.
uint64_t saRegistryReclaim(void* reg);
// Smallest epoch across the registry's shard domains (single-shard: the
// global epoch, as before).
uint64_t saRegistryEpoch(void* reg);

// ---- Shard plane (saturation visibility) ----
int saRegistryShards(void* reg);
// Slots with undrained workload samples queued on `shard` (-1 on a bad
// shard index).
int64_t saRegistryShardQueueDepth(void* reg, int shard);
// Retired storage versions awaiting reclamation on `shard`'s epoch domain.
int64_t saRegistryShardRetired(void* reg, int shard);

// By-name snapshot acquisition in one call: hashes the name once and probes
// the owning shard's lock-free index under an epoch pin — the multi-tenant
// reader hot path. NULL when the name is unknown or the shard's pin slots
// are exhausted (admission control). Unpin with saSnapshotUnpin.
void* saRegistryAcquire(void* reg, const char* name);

// ---- Adaptation daemon ----
// Supplies the machine specification the §6 selector reasons against
// (bytes of memory per socket, aggregate cycles/s per socket, memory and
// interconnect bandwidth in bytes/s). Defaults to the paper's 18-core
// machine; call before the first daemon start / adapt-once, non-positive
// values keep the corresponding default.
void saRegistryConfigureMachine(void* reg, double mem_bytes_per_socket,
                                double exec_cycles_per_socket, double bw_memory,
                                double bw_interconnect);

// Starts the background adaptation thread (idempotent). interval_ms <= 0
// selects the default; min_predicted_win < 0 selects the default margin.
void saRegistryDaemonStart(void* reg, double interval_ms, double min_predicted_win);
// Like saRegistryDaemonStart with an explicit worker-thread count (<= 0
// selects 1). Workers claim due shards (own shards first, then steal).
void saRegistryDaemonStartWorkers(void* reg, double interval_ms, double min_predicted_win,
                                  int workers);
void saRegistryDaemonStop(void* reg);
// One synchronous adaptation pass; returns the number of slots
// restructured. Usable with or without the background thread.
int saRegistryAdaptOnce(void* reg);
uint64_t saRegistryAdaptations(void* reg);

// ---- Slot (stable identity) ----
uint64_t saSlotLength(const void* slot);
// Current storage properties; racy against the daemon by nature.
uint32_t saSlotBits(const void* slot);
int saSlotIsReplicated(const void* slot);
// Restructure generation of the current storage (0 = as created).
uint64_t saSlotSequence(const void* slot);

// Thread-safe element write into the current representation. Serializes
// with other writers and with the daemon's publish; the value must fit the
// current storage width.
void saSlotWrite(void* slot, uint64_t index, uint64_t value);

// Read-modify-write under the slot's writer lock: returns the previous
// value and stores (old + delta) wrapped at the slot's declared width.
// Aborts when the wrapped result exceeds the live storage width.
uint64_t saSlotFetchAdd(void* slot, uint64_t index, uint64_t delta);

// ---- Decision audit (explain) ----

// Audit-ring capacity: saSlotExplain never yields more than this many
// decisions (runtime/audit.h keeps the last 8 per slot).
enum : uint32_t { SA_EXPLAIN_MAX_DECISIONS = 8 };

// One adaptation decision, flattened for the C boundary. Configuration
// words use the shared trace packing (adapt::PackConfigWord):
//   encoding << 24 | bits << 16 | placement kind << 8 | socket & 0xff.
struct SaSlotDecision {
  uint64_t trace_id;  // links to SaObsTraceEvent payload ids (0 = untracked)
  uint64_t ns;        // steady-clock nanoseconds at decision time
  // Outcome: reason holds an adapt::DecisionReason value (0 accepted,
  // 1 reject-same-config, 2 reject-margin, 3 flap-hold).
  uint32_t reason;
  uint32_t published;  // accepted and the rebuilt storage actually published
  uint64_t published_sequence;
  // Margin math.
  uint64_t packed_current;
  uint64_t packed_chosen;
  double current_speedup;
  double chosen_speedup;
  double margin;
  double predicted_win;  // chosen_speedup / current_speedup - 1
  // Every candidate the selector weighed (role is NUL-terminated:
  // "uncompressed" / "compressed" / "current").
  uint32_t num_candidates;
  uint32_t reserved;
  uint64_t candidate_config[4];
  double candidate_speedup[4];
  char candidate_role[4][16];
  // Selector inputs snapshot (the load the decision reasoned about).
  double in_accesses_per_second;
  double in_random_fraction;
  double in_mem_utilization;
  double in_ic_utilization;
  double in_compression_ratio;
  double in_for_delta_ratio;
  uint32_t in_read_only;
  uint32_t in_mostly_reads;
  // Calibration score (valid when scored != 0): realized post/pre access
  // rate vs the predicted speedup ratio.
  uint32_t scored;
  uint32_t reserved2;
  double pre_rate;
  double post_rate;
  double predicted_ratio;
  double realized_ratio;
  double calibration_error;
};

// Copies up to cap audit-ring decisions for the slot into out, most recent
// first, and returns the total number of decisions ever recorded (which may
// exceed both cap and SA_EXPLAIN_MAX_DECISIONS; the copied count is
// min(cap, total, SA_EXPLAIN_MAX_DECISIONS)). Returns 0 when the slot has
// no audit state yet — the daemon has never decided on it, or runs with
// audit off. cap == 0 (out may be NULL) is a cheap "any decisions?" probe.
// Works with SA_OBS compiled out: the audit plane is runtime state, not
// telemetry.
uint64_t saSlotExplain(void* slot, SaSlotDecision* out, uint64_t cap);

// Copies the newest *published* decision — the one behind the slot's live
// configuration — into out (may be NULL for a probe) and returns 1, or
// returns 0 when the slot has never published an audited decision. Unlike
// saSlotExplain this survives ring eviction: under reject-heavy traffic the
// accepted record ages out of the 8-deep ring, but the slot keeps a copy
// that also receives its realized-vs-predicted calibration score. Works
// with SA_OBS compiled out.
uint32_t saSlotExplainPublished(void* slot, SaSlotDecision* out);

// ---- Snapshot (consistent read view) ----
// Pins the slot's current representation; all reads through the returned
// handle observe exactly that representation.
void* saSlotPin(void* slot);
// Like saSlotPin, but returns NULL instead of aborting when the slot's
// epoch domain has no free pin slots.
void* saSlotTryPin(void* slot);
void saSnapshotUnpin(void* snap);

uint64_t saSnapshotRead(void* snap, uint64_t index);
// Chunk-granular block-kernel sum over [begin, end).
uint64_t saSnapshotSumRange(void* snap, uint64_t begin, uint64_t end);

// ---- Pushdown scans over a pinned snapshot ----
// Same predicate ABI as saArrayCountIf (`op`: 0 ==, 1 !=, 2 <, 3 <=, 4 >,
// 5 >=); the scans feed the slot's selectivity sample like the native
// ArraySnapshot scan calls.
uint64_t saSnapshotCountIf(void* snap, uint64_t begin, uint64_t end, int op,
                           uint64_t constant);
// Bitmap semantics follow saArraySelectIf: bit j describes element begin+j,
// `bitmap_words` must cover (end - begin + 63) / 64 words (hard-checked).
uint64_t saSnapshotSelectIf(void* snap, uint64_t begin, uint64_t end, int op,
                            uint64_t constant, uint64_t* bitmap, uint64_t bitmap_words);
uint64_t saSnapshotFilteredSum(void* snap, uint64_t begin, uint64_t end, int op,
                               uint64_t constant);

uint64_t saSnapshotLength(const void* snap);
uint32_t saSnapshotBits(const void* snap);
uint64_t saSnapshotSequence(const void* snap);

}  // extern "C"

#endif  // SA_RUNTIME_ENTRY_POINTS_H_
