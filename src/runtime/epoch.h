// Epoch-based reclamation for the online-adaptation runtime.
//
// The paper's §6 restructuring swaps an array's storage for a rebuilt one;
// in a long-lived service readers may still be scanning the old storage when
// the swap happens. EpochManager delays freeing a retired storage until no
// reader can still observe it, without any locks on the reader fast path
// (the shape Colnet & Sonntag's GC work motivates: reclaim a retired
// representation only once no accessor can reach it).
//
// Scheme (classic 3-epoch EBR):
//  * A global epoch counter E advances one step at a time.
//  * Readers Pin() before dereferencing a published pointer: they claim a
//    slot in a fixed array and store E there. Unpin() clears the slot.
//    Both are a couple of atomic operations — no mutex, no syscalls.
//  * Writers Retire() an object at the current epoch R. The object is freed
//    once E >= R + 2: a reader pinned at R or R+1 may still hold a pointer
//    loaded before the swap, a reader pinned at R+2 must have pinned after
//    the retiring swap was published and can only see the new pointer.
//  * TryAdvance() moves E forward only when every pinned slot has reached E,
//    so a stalled reader blocks reclamation (never correctness).
#ifndef SA_RUNTIME_EPOCH_H_
#define SA_RUNTIME_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"

namespace sa::runtime {

class EpochManager {
 public:
  // Default upper bound on concurrently pinned readers (threads × nested
  // pins). Slots are claimed per Pin(), so the bound is on simultaneous
  // pins, not on registered threads. A sharded registry gives every shard
  // its own domain, so the bound is per shard, not process-wide.
  static constexpr int kDefaultSlots = 256;

  EpochManager() : EpochManager(kDefaultSlots) {}
  explicit EpochManager(int num_slots);
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // A pinned slot. Obtained from Pin()/TryPin(); must be returned via
  // Unpin() on the same manager. POD handle so ArraySnapshot can carry it
  // by value. `valid()` is false only for TryPin()'s exhaustion result.
  struct PinHandle {
    int slot = -1;
    bool valid() const { return slot >= 0; }
  };

  // Enters the current epoch. Hot path: one CAS to claim a slot (the
  // thread-local hint makes this hit the same free slot every time) plus a
  // store/validate pair on the epoch — no locks. Aborts when the domain's
  // slots are exhausted (use TryPin to observe exhaustion as an error).
  PinHandle Pin();

  // Like Pin(), but when every slot is claimed after a bounded sweep it
  // returns an invalid handle instead of spinning or aborting — the
  // admission-control shape a service needs when more readers arrive than
  // the domain was sized for. Never blocks.
  PinHandle TryPin();

  int num_slots() const { return num_slots_; }

  // Leaves the epoch; `handle` becomes invalid.
  void Unpin(PinHandle handle);

  // Queues `deleter` to run once every reader that could observe the retired
  // object has unpinned. Cold path (writer side), internally serialized.
  void Retire(std::function<void()> deleter);

  // Attempts to advance the global epoch and frees every eligible retired
  // object. Returns the number of deleters run. Cold path (writer side).
  size_t TryReclaim();

  // Observability (tests, stats).
  uint64_t epoch() const { return global_epoch_.load(std::memory_order_acquire); }
  size_t retired_count() const;
  int pinned_count() const;

 private:
  // Slot encoding: 0 = free, otherwise (epoch << 1) | 1.
  static constexpr uint64_t kFree = 0;
  static uint64_t Encode(uint64_t epoch) { return (epoch << 1) | 1; }
  static uint64_t DecodeEpoch(uint64_t v) { return v >> 1; }

  struct alignas(64) Slot {
    std::atomic<uint64_t> value{kFree};
  };

  struct Retired {
    uint64_t epoch;
    std::function<void()> deleter;
  };

  // True when every non-free slot has reached `epoch`.
  bool AllPinnedAt(uint64_t epoch) const;

  std::atomic<uint64_t> global_epoch_{1};  // starts at 1 so encoded values != kFree
  const int num_slots_;
  std::unique_ptr<Slot[]> slots_;

  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;
};

}  // namespace sa::runtime

#endif  // SA_RUNTIME_EPOCH_H_
