// Per-slot decision audit + calibration state (the explain/score loop).
//
// The daemon records a DecisionRecord for every selector run on a slot into
// a small bounded ring here, tracks an EWMA of the slot's sampled access
// rate across drains, scores each published decision realized-vs-predicted
// on the first drain after its publish, and detects configuration flapping
// (A -> B -> A within a few decisions) to hold the slot down.
//
// Allocation: lazily, on the slot's first recorded decision
// (ArraySlot::EnsureAudit) — a 250k-slot loadgen registry whose slots never
// adapt pays one null pointer per slot, not a record ring each. All fields
// are guarded by `mu`; the daemon's writes are already serialized
// (rebuild_mu_ / single drain consumer), the lock is for explain readers
// (sa_cli, testkit, C-ABI) sampling mid-program.
#ifndef SA_RUNTIME_AUDIT_H_
#define SA_RUNTIME_AUDIT_H_

#include <cstdint>
#include <mutex>

#include "adapt/decision_record.h"

namespace sa::runtime {

struct SlotAuditState {
  static constexpr int kRingSize = 8;  // the "last K decisions" of explain

  mutable std::mutex mu;

  // Ring of the most recent decisions; record i of `decisions` total lives
  // at ring[i % kRingSize].
  adapt::DecisionRecord ring[kRingSize];
  uint64_t decisions = 0;

  // Sampled access-rate EWMA (accesses/second) across non-thin drains; the
  // pre-restructure baseline a published decision is scored against.
  double rate_ewma = 0.0;
  bool has_rate = false;

  // Pending realized-vs-predicted score for the latest published decision,
  // consumed by the first drain after the publish.
  bool pending_score = false;
  uint64_t pending_index = 0;  // decisions-space index of that record
  double pending_pre_rate = 0.0;
  double pending_predicted = 0.0;

  // Copy of the newest published decision, kept outside the ring: under
  // reject-heavy traffic the bounded ring evicts the accepted record within
  // kRingSize decisions, but "which decision produced the live
  // configuration, and how did its prediction score" must stay answerable.
  // The copy receives the calibration score even after eviction.
  bool has_last_published = false;
  uint64_t last_published_index = 0;  // decisions-space index of the copy
  adapt::DecisionRecord last_published;

  // Flap detection: the configuration the slot most recently moved away
  // from, and when; an accepted decision choosing it again within the
  // daemon's flap window starts a hold-down.
  bool has_prev_config = false;
  adapt::Configuration prev_config;
  uint64_t last_accept_index = 0;
  int hold_remaining = 0;

  // All three require `mu` held.
  adapt::DecisionRecord& Push(const adapt::DecisionRecord& record) {
    adapt::DecisionRecord& slot = ring[decisions % kRingSize];
    slot = record;
    ++decisions;
    return slot;
  }

  adapt::DecisionRecord* Find(uint64_t index) {
    if (index >= decisions || decisions - index > kRingSize) {
      return nullptr;  // never recorded, or already overwritten
    }
    return &ring[index % kRingSize];
  }

  // Copies up to `cap` records, most recent first; returns how many.
  int Copy(adapt::DecisionRecord* out, int cap) const {
    const uint64_t have =
        decisions < static_cast<uint64_t>(kRingSize) ? decisions : kRingSize;
    int n = 0;
    for (uint64_t i = 0; i < have && n < cap; ++i, ++n) {
      out[n] = ring[(decisions - 1 - i) % kRingSize];
    }
    return n;
  }
};

}  // namespace sa::runtime

#endif  // SA_RUNTIME_AUDIT_H_
