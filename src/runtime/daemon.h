// AdaptationDaemon: the background half of the online-adaptation runtime.
//
// The paper's §6 workflow — profile, run the two-step selector, restructure
// — is driven by the *caller* in AdaptiveArray. Under a service workload
// nobody owns the loop, so the daemon periodically: drains each slot's
// sampled workload counters, synthesizes the §6 PCM-style WorkloadCounters
// from them, re-runs the selector with hysteresis (the predicted win must
// beat adapt::kDefaultAdaptationMargin, shared with AdaptiveArray), rebuilds
// the storage via smart::TryRestructure on the worker pool, and publishes
// the new representation with a single pointer swap; the old one goes to
// the epoch garbage list (§7: "re-apply its adaptivity workflow to select
// a potentially new set of smart functionalities").
#ifndef SA_RUNTIME_DAEMON_H_
#define SA_RUNTIME_DAEMON_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "adapt/selector.h"
#include "rts/worker_pool.h"
#include "runtime/registry.h"

namespace sa::runtime {

struct DaemonOptions {
  // Wall time between adaptation passes of the background thread.
  std::chrono::milliseconds interval{200};
  // Hysteresis: restructure only when the chosen configuration's estimated
  // speedup exceeds the current one's by this margin (a rebuild is not free,
  // and a borderline decision flip-flops with the workload's noise).
  double min_predicted_win = adapt::kDefaultAdaptationMargin;
  // Slots with fewer sampled accesses than this in an interval are left
  // alone — the counters are too thin to trust.
  uint64_t min_sampled_accesses = 4096;
  // Crude execution-demand model for synthesized counters: core cycles
  // consumed per element access (the real system measures this with PCM).
  double cycles_per_access = 4.0;
};

class AdaptationDaemon {
 public:
  AdaptationDaemon(ArrayRegistry& registry, rts::WorkerPool& pool, adapt::MachineCaps machine,
                   adapt::ArrayCosts costs, DaemonOptions options = {});
  ~AdaptationDaemon();

  AdaptationDaemon(const AdaptationDaemon&) = delete;
  AdaptationDaemon& operator=(const AdaptationDaemon&) = delete;

  // Background thread control. Start/Stop are idempotent.
  void Start();
  void Stop();
  bool running() const { return thread_.joinable(); }

  // One full adaptation pass over every slot (what the background thread
  // runs per interval; public so tests and the CLI drive the daemon
  // deterministically). Returns the number of slots restructured.
  int RunOnce();

  // Decision + rebuild + publish for one slot under explicit counters — the
  // deterministic core of RunOnce. Returns true when a new representation
  // was published.
  bool AdaptSlot(ArraySlot& slot, const adapt::WorkloadCounters& counters);

  // §6-style counters synthesized from an interval sample: access rate and
  // random fraction come straight from the counters; bandwidth demand and
  // utilization are modeled as rate × element size against the machine
  // caps, in the interleaved profiling shape (half the traffic remote).
  static adapt::WorkloadCounters SynthesizeCounters(const SlotSample& sample, uint64_t length,
                                                    const adapt::MachineCaps& machine,
                                                    double cycles_per_access);

  // §6.1 software hints derived from a slot's lifetime counters.
  static adapt::SoftwareHints HintsFor(const ArraySlot& slot);

  uint64_t adaptations() const { return adaptations_.load(std::memory_order_relaxed); }
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

 private:
  void ThreadMain();

  ArrayRegistry* registry_;
  rts::WorkerPool* pool_;
  adapt::MachineCaps machine_;
  adapt::ArrayCosts costs_;
  DaemonOptions options_;

  std::atomic<uint64_t> adaptations_{0};
  std::atomic<uint64_t> passes_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace sa::runtime

#endif  // SA_RUNTIME_DAEMON_H_
