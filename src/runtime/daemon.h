// AdaptationDaemon: the background half of the online-adaptation runtime.
//
// The paper's §6 workflow — profile, run the two-step selector, restructure
// — is driven by the *caller* in AdaptiveArray. Under a service workload
// nobody owns the loop, so the daemon periodically: drains each slot's
// sampled workload counters, synthesizes the §6 PCM-style WorkloadCounters
// from them, re-runs the selector with hysteresis (the predicted win must
// beat adapt::kDefaultAdaptationMargin, shared with AdaptiveArray), rebuilds
// the storage via smart::TryRestructure on the worker pool, and publishes
// the new representation with a single pointer swap; the old one goes to
// the epoch garbage list (§7: "re-apply its adaptivity workflow to select
// a potentially new set of smart functionalities").
//
// At multi-tenant scale the daemon is a worker *set* over the registry's
// shards rather than one thread over all slots:
//   * Each shard keeps an intrusive queue of slots with undrained samples;
//     a pass drains the queue in one batch instead of scanning every slot.
//   * Shards are claimed through a due-time CAS (rts/claim_set.h). A worker
//     services the shards it owns (shard % num_workers == worker) first,
//     then steals any other shard whose owner is behind — idle workers
//     absorb load imbalance without a handoff protocol.
//   * Backpressure: when a shard's retired-version debt exceeds
//     max_retired_debt, the pass drains samples and reclaims but skips
//     restructures (kDaemonBackpressureDrops), so a stalled reader cannot
//     make the daemon amplify memory pressure.
#ifndef SA_RUNTIME_DAEMON_H_
#define SA_RUNTIME_DAEMON_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "adapt/selector.h"
#include "rts/worker_pool.h"
#include "runtime/registry.h"

namespace sa::runtime {

struct DaemonOptions {
  // Wall time between adaptation passes over a given shard.
  std::chrono::milliseconds interval{200};
  // Hysteresis: restructure only when the chosen configuration's estimated
  // speedup exceeds the current one's by this margin (a rebuild is not free,
  // and a borderline decision flip-flops with the workload's noise).
  double min_predicted_win = adapt::kDefaultAdaptationMargin;
  // Slots with fewer sampled accesses than this in an interval are left
  // alone — the counters are too thin to trust.
  uint64_t min_sampled_accesses = 4096;
  // Crude execution-demand model for synthesized counters: core cycles
  // consumed per element access (the real system measures this with PCM).
  double cycles_per_access = 4.0;
  // Background worker threads servicing the shard set.
  int num_workers = 1;
  // Admission control: a shard whose epoch domain holds more retired
  // versions than this gets sample drains and reclamation but no new
  // restructures until the debt drains.
  size_t max_retired_debt = 64;

  // ---- decision audit + calibration (runtime/audit.h) ----
  // Record a DecisionRecord per selector run in the slot's audit ring,
  // score published decisions realized-vs-predicted, and run the flap
  // detector. Off only to measure the audit layer's own overhead
  // (bench/micro_runtime.cc) — explain/flap/score all need it.
  bool audit = true;
  // EWMA weight for the per-slot sampled access rate the scorer uses as the
  // pre-restructure baseline (1.0 = last drain only).
  double rate_ewma_alpha = 0.5;
  // Flap detector: an accepted decision that returns to the configuration
  // the slot moved away from within the last `flap_window` recorded
  // decisions is a flap; the slot is then held down (decisions that would
  // change its configuration are refused with DecisionReason::kFlapHold)
  // for the next `flap_hold_decisions` such decisions. 0 disables.
  int flap_window = 4;
  int flap_hold_decisions = 8;
  // Test hook: scales the chosen configuration's estimated speedup before
  // the margin test and the calibration score (1.0 = trust the estimator).
  // Lets tests plant a misprediction and assert the calibration loop
  // surfaces it as nonzero calibration error.
  double estimator_bias = 1.0;
};

class AdaptationDaemon {
 public:
  AdaptationDaemon(ArrayRegistry& registry, rts::WorkerPool& pool, adapt::MachineCaps machine,
                   adapt::ArrayCosts costs, DaemonOptions options = {});
  ~AdaptationDaemon();

  AdaptationDaemon(const AdaptationDaemon&) = delete;
  AdaptationDaemon& operator=(const AdaptationDaemon&) = delete;

  // Background worker control. Start/Stop are idempotent.
  void Start();
  void Stop();
  bool running() const { return !workers_.empty(); }

  // One synchronous adaptation pass over every shard, ignoring due times
  // (what tests and the CLI use to drive the daemon deterministically).
  // Returns the number of slots restructured.
  int RunOnce();

  // Decision + rebuild + publish for one slot under explicit counters — the
  // deterministic core of a pass. Serialized across workers (the shared
  // WorkerPool does not nest). Returns true when a new representation was
  // published. Allocates a fresh trace id for the attempt; every decision
  // (including rejects and flap holds) lands in the slot's audit ring when
  // options.audit is on.
  bool AdaptSlot(ArraySlot& slot, const adapt::WorkloadCounters& counters);

  // §6-style counters synthesized from an interval sample: access rate and
  // random fraction come straight from the counters; bandwidth demand and
  // utilization are modeled as rate × element size against the machine
  // caps, in the interleaved profiling shape (half the traffic remote).
  static adapt::WorkloadCounters SynthesizeCounters(const SlotSample& sample, uint64_t length,
                                                    const adapt::MachineCaps& machine,
                                                    double cycles_per_access);

  // §6.1 software hints derived from a slot's lifetime counters.
  static adapt::SoftwareHints HintsFor(const ArraySlot& slot);

  uint64_t adaptations() const { return adaptations_.load(std::memory_order_relaxed); }
  // Shard passes completed (one RunOnce over an N-shard registry counts N).
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

 private:
  void WorkerMain(int worker);
  // Claims every due shard visible to `worker` (own shards first, then
  // steals) and services the claimed ones.
  void SweepShards(int worker, uint64_t now_ns, uint64_t interval_ns);
  // Drains one shard's sample queue, adapts eligible slots, reclaims.
  int ProcessShard(int shard);
  bool ProcessSlot(ArraySlot& slot, bool backpressure);
  // AdaptSlot with the caller's trace id (ProcessSlot threads the one it
  // stamped on the sample_drain event).
  bool AdaptSlotTraced(ArraySlot& slot, const adapt::WorkloadCounters& counters,
                       uint64_t trace_id);
  // Calibration: scores the pending published decision against this drain's
  // observed rate, then folds the rate into the slot's EWMA.
  void ObserveRate(ArraySlot& slot, double rate);
  uint64_t NextTraceId() { return next_trace_id_.fetch_add(1, std::memory_order_relaxed); }

  ArrayRegistry* registry_;
  rts::WorkerPool* pool_;
  adapt::MachineCaps machine_;
  adapt::ArrayCosts costs_;
  DaemonOptions options_;

  std::atomic<uint64_t> adaptations_{0};
  std::atomic<uint64_t> passes_{0};
  // Per-adaptation trace ids start at 1: id 0 means "untracked" everywhere.
  std::atomic<uint64_t> next_trace_id_{1};

  // The shared WorkerPool's RunOnAll is not reentrant, so rebuild work
  // (MinimalBits + TryRestructure) is serialized across daemon workers and
  // direct AdaptSlot callers.
  std::mutex rebuild_mu_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sa::runtime

#endif  // SA_RUNTIME_DAEMON_H_
