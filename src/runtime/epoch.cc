#include "runtime/epoch.h"

#include "obs/telemetry.h"
#include "obs/trace.h"

namespace sa::runtime {

EpochManager::EpochManager(int num_slots)
    : num_slots_(num_slots), slots_(new Slot[static_cast<size_t>(num_slots)]) {
  SA_CHECK_MSG(num_slots > 0, "epoch domain needs at least one pin slot");
}

EpochManager::~EpochManager() {
  // By now every reader must have unpinned and no new Retire can race; run
  // whatever is still queued.
  SA_CHECK_MSG(pinned_count() == 0, "EpochManager destroyed with pinned readers");
  for (const Retired& r : retired_) {
    r.deleter();
  }
}

EpochManager::PinHandle EpochManager::TryPin() {
  // Per-thread start slot: after the first Pin a thread keeps hitting the
  // slot it used last, so the claim CAS succeeds on the first try. The hint
  // is shared across managers — harmless, it is only a starting point.
  thread_local int hint = -1;
  if (hint < 0) {
    // Spread initial claims so threads do not pile onto slot 0's line.
    static std::atomic<int> next_start{0};
    hint = next_start.fetch_add(1, std::memory_order_relaxed);
  }
  int i = hint % num_slots_;
  // Two full sweeps: the first can lose every CAS to concurrent claimers,
  // the second only fails when the domain is genuinely saturated. Giving up
  // is the point — a saturated domain must surface as an acquire failure
  // (admission control), not as a spin or an abort.
  const int max_attempts = num_slots_ * 2;
  for (int attempts = 0; attempts < max_attempts; ++attempts) {
    uint64_t expected = kFree;
    uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    if (slots_[i].value.compare_exchange_strong(expected, Encode(e),
                                                std::memory_order_seq_cst)) {
      // If the global epoch advanced between the load and the claim, a
      // concurrent TryReclaim may have scanned past this still-free slot.
      // Re-stamp until the stamped epoch matches the global one; the stale
      // stamp only ever blocks epoch advance, never unblocks it, so this
      // loop is safe at every intermediate state.
      for (;;) {
        const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
        if (now == e) {
          break;
        }
        e = now;
        slots_[i].value.store(Encode(e), std::memory_order_seq_cst);
      }
      hint = i;
      return {i};
    }
    i = i + 1 == num_slots_ ? 0 : i + 1;
  }
  SA_OBS_COUNT(kEpochPinRejects);
  return {-1};
}

EpochManager::PinHandle EpochManager::Pin() {
  const PinHandle handle = TryPin();
  SA_CHECK_MSG(handle.valid(), "epoch pin slots exhausted");
  return handle;
}

void EpochManager::Unpin(PinHandle handle) {
  SA_DCHECK(handle.slot >= 0 && handle.slot < num_slots_);
  slots_[handle.slot].value.store(kFree, std::memory_order_seq_cst);
}

void EpochManager::Retire(std::function<void()> deleter) {
  SA_OBS_GAUGE_ADD(kRetiredVersions, 1);
  std::lock_guard<std::mutex> lock(retire_mu_);
  // Reading the epoch after the caller's pointer swap is conservative: the
  // recorded epoch can only be >= the epoch the swap was visible at, which
  // delays (never hastens) the free.
  retired_.push_back({global_epoch_.load(std::memory_order_seq_cst), std::move(deleter)});
}

bool EpochManager::AllPinnedAt(uint64_t epoch) const {
  for (int i = 0; i < num_slots_; ++i) {
    const uint64_t v = slots_[i].value.load(std::memory_order_seq_cst);
    if (v != kFree && DecodeEpoch(v) != epoch) {
      return false;
    }
  }
  return true;
}

size_t EpochManager::TryReclaim() {
  SA_OBS_SCOPED_NS(kEpochReclaimNs);
  std::lock_guard<std::mutex> lock(retire_mu_);
  // Advance at most one step per call: readers pinned at E block E -> E+1,
  // so repeated calls make progress exactly as fast as readers drain.
  const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  if (AllPinnedAt(e)) {
    global_epoch_.store(e + 1, std::memory_order_seq_cst);
    SA_OBS_COUNT(kEpochAdvances);
    SA_OBS_TRACE(kTraceEpochAdvance, nullptr, e + 1);
  }
  const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);

  size_t freed = 0;
  size_t kept = 0;
  for (Retired& r : retired_) {
    if (r.epoch + 2 <= now) {
      r.deleter();
      ++freed;
    } else {
      retired_[kept++] = std::move(r);
    }
  }
  retired_.resize(kept);
  if (freed > 0) {
    SA_OBS_COUNT_N(kEpochReclaimed, freed);
    SA_OBS_GAUGE_ADD(kRetiredVersions, -static_cast<int64_t>(freed));
    SA_OBS_TRACE(kTraceEpochReclaim, nullptr, freed, now);
  }
  return freed;
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

int EpochManager::pinned_count() const {
  int count = 0;
  for (int i = 0; i < num_slots_; ++i) {
    count += slots_[i].value.load(std::memory_order_seq_cst) != kFree ? 1 : 0;
  }
  return count;
}

}  // namespace sa::runtime
