#include "runtime/daemon.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>

#include "adapt/decision_record.h"
#include "adapt/estimator.h"
#include "common/bits.h"
#include "common/log.h"
#include "common/macros.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rts/claim_set.h"
#include "runtime/audit.h"
#include "smart/for_delta.h"
#include "smart/restructure.h"

namespace sa::runtime {

namespace {

// Predicted-win ratio as parts-per-million above break-even (clamped at 0).
uint64_t WinPpm(double chosen_speedup, double current_speedup) {
  if (current_speedup <= 0.0) {
    return 0;
  }
  const double ratio = chosen_speedup / current_speedup - 1.0;
  return ratio <= 0.0 ? 0 : static_cast<uint64_t>(ratio * 1e6);
}

}  // namespace

AdaptationDaemon::AdaptationDaemon(ArrayRegistry& registry, rts::WorkerPool& pool,
                                   adapt::MachineCaps machine, adapt::ArrayCosts costs,
                                   DaemonOptions options)
    : registry_(&registry),
      pool_(&pool),
      machine_(machine),
      costs_(costs),
      options_(options) {
  options_.num_workers = std::max(1, options_.num_workers);
}

AdaptationDaemon::~AdaptationDaemon() { Stop(); }

void AdaptationDaemon::Start() {
  if (!workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
  SA_OBS_GAUGE_ADD(kDaemonRunning, 1);
  SA_LOG(kInfo, "daemon", "started (interval=%lld ms, workers=%d, shards=%d)",
         static_cast<long long>(options_.interval.count()), options_.num_workers,
         registry_->num_shards());
}

void AdaptationDaemon::Stop() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  SA_OBS_GAUGE_ADD(kDaemonRunning, -1);
  SA_LOG(kInfo, "daemon", "stopped after %" PRIu64 " shard passes",
         passes_.load(std::memory_order_relaxed));
}

void AdaptationDaemon::WorkerMain(int worker) {
  const uint64_t interval_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.interval).count());
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    SweepShards(worker, obs::NowNs(), interval_ns);
    lock.lock();
  }
}

void AdaptationDaemon::SweepShards(int worker, uint64_t now_ns, uint64_t interval_ns) {
  const int num_shards = registry_->num_shards();
  const int stride = options_.num_workers;
  // Own shards first: the common case is every worker servicing its own
  // residue class and the CASes never colliding.
  for (int shard = worker % stride; shard < num_shards; shard += stride) {
    if (rts::TryClaimDue(registry_->shard_next_due(shard), now_ns, now_ns + interval_ns)) {
      SA_OBS_COUNT(kDaemonShardClaims);
      ProcessShard(shard);
    }
  }
  // Then everyone else's: a claim that succeeds here means the owner is
  // behind (busy restructuring, or descheduled) and this worker steals the
  // pass.
  for (int shard = 0; shard < num_shards; ++shard) {
    if (shard % stride == worker % stride) {
      continue;
    }
    if (rts::TryClaimDue(registry_->shard_next_due(shard), now_ns, now_ns + interval_ns)) {
      SA_OBS_COUNT(kDaemonShardSteals);
      ProcessShard(shard);
    }
  }
}

int AdaptationDaemon::RunOnce() {
  int restructured = 0;
  for (int shard = 0; shard < registry_->num_shards(); ++shard) {
    restructured += ProcessShard(shard);
  }
  return restructured;
}

int AdaptationDaemon::ProcessShard(int shard) {
  SA_OBS_SCOPED_NS(kDaemonPassNs);
  SA_OBS_COUNT(kDaemonPasses);
  // Admission control: restructures create retired versions; when the
  // shard's reclamation is behind (a pinned reader, or simply too many
  // rebuilds in flight), stop adding debt and let reclaim catch up.
  const bool backpressure = registry_->shard_retired(shard) > options_.max_retired_debt;
  int restructured = 0;
  for (ArraySlot* slot : registry_->DrainSampleQueue(shard)) {
    restructured += ProcessSlot(*slot, backpressure) ? 1 : 0;
  }
  // Retired versions from this pass (and stragglers from earlier ones)
  // become reclaimable as reader pins drain; two passes advance the epoch
  // far enough for the previous pass's garbage.
  registry_->ReclaimShard(shard);
  passes_.fetch_add(1, std::memory_order_relaxed);
  return restructured;
}

bool AdaptationDaemon::ProcessSlot(ArraySlot& slot, bool backpressure) {
  const SlotSample sample = slot.DrainSample();
  const uint64_t accesses = sample.reads() + sample.writes;
  if (accesses == 0) {
    // Idle slot: nothing was sampled, nothing is dropped.
    return false;
  }
  const uint64_t trace_id = NextTraceId();
  const bool thin = accesses < options_.min_sampled_accesses || sample.seconds <= 0.0;
  if (options_.audit && !thin) {
    // Calibration rides the drain the daemon already does: score the
    // pending published decision (if any) against this interval's rate,
    // then fold the rate into the slot's EWMA. No hot-path atomics — the
    // sampled counters were flushed by readers regardless.
    ObserveRate(slot, static_cast<double>(accesses) / sample.seconds);
  }
  SA_OBS_TRACE(kTraceSampleDrain, slot.name().c_str(), sample.reads(), sample.writes,
               static_cast<uint64_t>(sample.seconds * 1e6),
               (thin ? 1 : 0) | (trace_id << 1));
  if (thin) {
    // The drained counters are consumed but lead to no decision — the
    // sample is dropped, and before the telemetry layer that happened
    // silently. See also the race drops counted in AdaptSlot.
    SA_OBS_COUNT(kDaemonSampleDrops);
    SA_LOG(kDebug, "daemon",
           "slot=%s sample dropped (thin): accesses=%" PRIu64 " min=%" PRIu64
           " seconds=%.4f",
           slot.name().c_str(), accesses, options_.min_sampled_accesses, sample.seconds);
    return false;
  }
  if (backpressure) {
    SA_OBS_COUNT(kDaemonBackpressureDrops);
    SA_LOG(kDebug, "daemon", "slot=%s sample dropped (backpressure: retired debt)",
           slot.name().c_str());
    return false;
  }
  const adapt::WorkloadCounters counters =
      SynthesizeCounters(sample, slot.length(), machine_, options_.cycles_per_access);
  return AdaptSlotTraced(slot, counters, trace_id);
}

void AdaptationDaemon::ObserveRate(ArraySlot& slot, double rate) {
  // Allocate on the first drain (not the first decision): the EWMA must be
  // warm before the first accepted decision snapshots it as the
  // pre-restructure baseline.
  SlotAuditState* state = &slot.EnsureAudit();
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->pending_score) {
    state->pending_score = false;
    const double pre = state->pending_pre_rate;
    const double predicted = state->pending_predicted;
    if (pre > 0.0 && predicted > 0.0) {
      const double realized = rate / pre;
      const double error = std::abs(realized - predicted) / predicted;
      if (adapt::DecisionRecord* record = state->Find(state->pending_index)) {
        record->scored = true;
        record->pre_rate = pre;
        record->post_rate = rate;
        record->realized_ratio = realized;
        record->calibration_error = error;
      }
      // Score the surviving copy too — reject-heavy traffic may already
      // have evicted the accepted record from the ring.
      if (state->has_last_published &&
          state->last_published_index == state->pending_index) {
        state->last_published.scored = true;
        state->last_published.pre_rate = pre;
        state->last_published.post_rate = rate;
        state->last_published.realized_ratio = realized;
        state->last_published.calibration_error = error;
      }
      SA_OBS_COUNT(kDaemonDecisionsScored);
      SA_OBS_HIST(kDaemonCalibrationErrPpm, error * 1e6);
      SA_OBS_HIST(kDaemonRealizedSpeedupPpm, realized * 1e6);
      SA_LOG(kDebug, "daemon",
             "slot=%s score: predicted=%.3f realized=%.3f err=%.3f",
             slot.name().c_str(), predicted, realized, error);
    }
  }
  state->rate_ewma = state->has_rate
                         ? options_.rate_ewma_alpha * rate +
                               (1.0 - options_.rate_ewma_alpha) * state->rate_ewma
                         : rate;
  state->has_rate = true;
}

bool AdaptationDaemon::AdaptSlot(ArraySlot& slot, const adapt::WorkloadCounters& counters) {
  return AdaptSlotTraced(slot, counters, NextTraceId());
}

bool AdaptationDaemon::AdaptSlotTraced(ArraySlot& slot, const adapt::WorkloadCounters& counters,
                                       uint64_t trace_id) {
  // The shared pool's RunOnAll does not nest: one rebuild at a time across
  // every worker and direct caller.
  std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
  // Pin while reading the source: only this daemon publishes today, but the
  // pin keeps the rebuild correct even with other publishers around. The
  // pin lives in the slot's own shard domain.
  const EpochManager::PinHandle pin = slot.epoch_->Pin();
  const uint64_t writes_before = slot.write_count();
  const ArrayVersion* version = slot.Current();
  // A successful publish retires `version`, after which it may be reclaimed
  // at any epoch advance — snapshot the sequence while the pin holds it.
  const uint64_t source_sequence = version->sequence;
  const smart::SmartArray& source = *version->storage;

  // Data width: the narrowest width holding every current element, floored
  // by the widest value ever written so a racing writer cannot overflow a
  // narrowed rebuild (TryRestructure still catches the residual race).
  const uint32_t data_bits =
      std::max(smart::MinimalBits(*pool_, source), slot.max_written_bits());

  adapt::SelectorInputs inputs;
  inputs.machine = machine_;
  inputs.hints = HintsFor(slot);
  inputs.counters = counters;
  inputs.costs = costs_;
  inputs.compression_ratio = static_cast<double>(data_bits) / 64.0;
  // Encoding axis input: how much narrower a frame-of-reference+delta
  // re-encoding would pack the current contents (estimated from the zone
  // maps the scan engine already maintains — no extra pass over the data).
  inputs.for_delta_ratio = smart::ForDeltaArray::EstimateDeltaRatio(source);
  adapt::DecisionRecord record;
  const adapt::SelectorResult result =
      adapt::ChooseConfiguration(inputs, options_.audit ? &record : nullptr);

  const adapt::Configuration current{
      source.placement(),
      source.bits() < 64 || source.encoding() != smart::Encoding::kBitPacked,
      source.encoding()};
  const uint32_t new_bits = result.chosen.compressed ? data_bits : 64;
  const uint64_t packed_current = adapt::PackConfigWord(current, source.bits());
  const uint64_t packed_chosen = adapt::PackConfigWord(result.chosen, new_bits);
  const char* slot_name = slot.name().c_str();

  // Margin math runs for every outcome, not just past the same-config test:
  // the audit record always carries the full comparison. estimator_bias is a
  // test hook (1.0 in production) applied on the same path the calibration
  // scorer later checks, so a planted misprediction surfaces as calibration
  // error.
  const double current_speedup = adapt::EstimateConfigSpeedup(machine_, counters, costs_,
                                                              current, inputs.compression_ratio);
  const double chosen_speedup =
      adapt::EstimateConfigSpeedup(machine_, counters, costs_, result.chosen,
                                   inputs.compression_ratio) *
      options_.estimator_bias;
  const uint64_t win_ppm = WinPpm(chosen_speedup, current_speedup);

  record.trace_id = trace_id;
  record.ns = obs::NowNs();
  record.AddCandidate("current", current, source.bits(), current_speedup);
  record.current = current;
  record.current_bits = source.bits();
  record.current_speedup = current_speedup;
  record.chosen_speedup = chosen_speedup;
  record.margin = options_.min_predicted_win;
  record.predicted_ratio = current_speedup > 0.0 ? chosen_speedup / current_speedup : 0.0;
  record.predicted_win = record.predicted_ratio > 0.0 ? record.predicted_ratio - 1.0 : 0.0;

  adapt::DecisionReason reason = adapt::DecisionReason::kAccepted;
  if (result.chosen == current) {
    reason = adapt::DecisionReason::kRejectSameConfig;
  } else if (chosen_speedup < current_speedup * (1.0 + options_.min_predicted_win)) {
    // Hysteresis (shared with AdaptiveArray::MaybeAdapt): the estimated win
    // over the *current* configuration must clear the margin.
    reason = adapt::DecisionReason::kRejectMargin;
  }

  // Record the decision — refusals included, explain must show those too —
  // and run the flap detector before acting on the outcome.
  SlotAuditState* audit = nullptr;
  uint64_t record_index = 0;
  int hold_remaining = 0;
  if (options_.audit) {
    audit = &slot.EnsureAudit();
    std::lock_guard<std::mutex> lock(audit->mu);
    if (reason == adapt::DecisionReason::kAccepted && options_.flap_window > 0 &&
        options_.flap_hold_decisions > 0) {
      if (audit->hold_remaining > 0) {
        --audit->hold_remaining;
        reason = adapt::DecisionReason::kFlapHold;
      } else if (audit->has_prev_config && result.chosen == audit->prev_config &&
                 audit->decisions - audit->last_accept_index <=
                     static_cast<uint64_t>(options_.flap_window)) {
        // A -> B -> A within the window: the slot is oscillating on workload
        // noise. Refuse, and hold further config changes down.
        audit->hold_remaining = options_.flap_hold_decisions;
        reason = adapt::DecisionReason::kFlapHold;
      }
      hold_remaining = audit->hold_remaining;
    }
    record.reason = reason;
    record_index = audit->decisions;
    audit->Push(record);
  }

  const uint64_t decision_word = static_cast<uint64_t>(reason) | (trace_id << 8);
  if (reason == adapt::DecisionReason::kRejectSameConfig) {
    SA_OBS_COUNT(kDaemonRejectSame);
    SA_OBS_TRACE(kTraceDecision, slot_name, packed_current, packed_chosen, decision_word);
    slot.epoch_->Unpin(pin);
    return false;
  }
  if (reason == adapt::DecisionReason::kRejectMargin) {
    SA_OBS_COUNT(kDaemonRejectMargin);
    SA_OBS_TRACE(kTraceDecision, slot_name, packed_current, packed_chosen, decision_word,
                 win_ppm);
    SA_LOG(kDebug, "daemon",
           "slot=%s decision=reject-margin %s/%ub -> %s/%ub win=%.4f margin=%.4f",
           slot_name, smart::ToString(source.placement().kind), source.bits(),
           smart::ToString(result.chosen.placement.kind), new_bits,
           chosen_speedup / std::max(current_speedup, 1e-12) - 1.0,
           options_.min_predicted_win);
    slot.epoch_->Unpin(pin);
    return false;
  }
  if (reason == adapt::DecisionReason::kFlapHold) {
    SA_OBS_COUNT(kDaemonFlapHolds);
    SA_OBS_TRACE(kTraceFlapHold, slot_name, packed_current, packed_chosen, trace_id,
                 static_cast<uint64_t>(hold_remaining));
    SA_LOG(kInfo, "daemon", "slot=%s decision=flap-hold %s/%ub -> %s/%ub hold=%d",
           slot_name, smart::ToString(source.placement().kind), source.bits(),
           smart::ToString(result.chosen.placement.kind), new_bits, hold_remaining);
    slot.epoch_->Unpin(pin);
    return false;
  }

  SA_OBS_TRACE(kTraceDecision, slot_name, packed_current, packed_chosen, decision_word,
               win_ppm);
  SA_LOG(kInfo, "daemon",
         "slot=%s decision=accept %s/%ub -> %s/%ub win=%.4f reads=%.0f/s "
         "random=%.3f",
         slot_name, smart::ToString(source.placement().kind), source.bits(),
         smart::ToString(result.chosen.placement.kind), new_bits,
         chosen_speedup / std::max(current_speedup, 1e-12) - 1.0,
         counters.accesses_per_second, counters.random_fraction);

  SA_OBS_TRACE(kTraceRestructureBegin, slot_name, packed_current, packed_chosen, trace_id);
  smart::RestructureStats stats;
  auto rebuilt =
      smart::TryRestructure(*pool_, source, result.chosen.placement, new_bits,
                            registry_->topology(), &stats, result.chosen.encoding);
  SA_OBS_TRACE(kTraceRestructureEnd, slot_name, stats.wall_ns, stats.unpack_ns,
               stats.pack_ns, (rebuilt != nullptr ? 1 : 0) | (trace_id << 1));
  slot.epoch_->Unpin(pin);
  if (rebuilt == nullptr) {
    // A racing write stored a value wider than the target width mid-scan;
    // the sampled interval produced no adaptation, so its sample is lost.
    // The next cycle re-measures and retries.
    SA_OBS_COUNT(kDaemonSampleDrops);
    SA_LOG(kWarn, "daemon", "slot=%s restructure aborted (width overflow race)",
           slot_name);
    return false;
  }
  uint64_t new_sequence = source_sequence + 1;
  if (!registry_->Publish(slot, std::move(rebuilt), writes_before, trace_id, &new_sequence)) {
    // Writes raced the rebuild; drop it (and the sample) and retry next
    // cycle.
    SA_OBS_COUNT(kDaemonSampleDrops);
    SA_LOG(kWarn, "daemon", "slot=%s publish refused (lost-write race)", slot_name);
    return false;
  }
  adaptations_.fetch_add(1, std::memory_order_relaxed);
  SA_OBS_COUNT(kDaemonRestructures);
  if (audit != nullptr) {
    // Close the books on the accepted decision: mark it published, remember
    // the configuration the slot moved away from (flap detection), and arm
    // the calibration score the next drain settles.
    std::lock_guard<std::mutex> lock(audit->mu);
    if (adapt::DecisionRecord* published = audit->Find(record_index)) {
      published->published = true;
      published->published_sequence = new_sequence;
      // Ring-eviction-proof copy: this is the decision behind the slot's
      // live configuration until the next publish.
      audit->has_last_published = true;
      audit->last_published_index = record_index;
      audit->last_published = *published;
    }
    audit->has_prev_config = true;
    audit->prev_config = current;
    audit->last_accept_index = record_index;
    audit->pending_score = true;
    audit->pending_index = record_index;
    audit->pending_pre_rate = audit->has_rate ? audit->rate_ewma : 0.0;
    audit->pending_predicted = record.predicted_ratio;
  }
  return true;
}

adapt::WorkloadCounters AdaptationDaemon::SynthesizeCounters(const SlotSample& sample,
                                                             uint64_t length,
                                                             const adapt::MachineCaps& machine,
                                                             double cycles_per_access) {
  adapt::WorkloadCounters c;
  const double accesses =
      static_cast<double>(sample.reads() + sample.writes) / std::max(sample.seconds, 1e-9);
  c.accesses_per_second = accesses;
  c.elem_bytes = 8.0;
  c.dataset_bytes = static_cast<double>(length) * 8.0;
  c.random_fraction =
      sample.reads() == 0
          ? 0.0
          : static_cast<double>(sample.random_reads) / static_cast<double>(sample.reads());

  const double sockets = std::max(1, machine.sockets);
  const double demand_per_socket = accesses * c.elem_bytes / sockets;
  c.bw_current_memory = std::max(1.0, demand_per_socket);
  c.exec_current_per_socket = std::max(1.0, accesses / sockets * cycles_per_access);
  // Interleaved profiling shape: each socket's team pulls half its bytes
  // across the interconnect.
  c.max_mem_utilization =
      machine.bw_max_memory > 0.0 ? std::min(1.0, demand_per_socket / machine.bw_max_memory)
                                  : 0.0;
  c.max_ic_utilization = machine.bw_max_interconnect > 0.0
                             ? std::min(1.0, demand_per_socket * 0.5 / machine.bw_max_interconnect)
                             : 0.0;
  return c;
}

adapt::SoftwareHints AdaptationDaemon::HintsFor(const ArraySlot& slot) {
  const SlotSample lifetime = slot.LifetimeSample();
  // Post-seal writes only: SealWrites() lets an uploader exclude its bulk
  // population traffic from the read-only / mostly-reads judgment.
  const uint64_t writes = slot.unsealed_write_count();
  adapt::SoftwareHints hints;
  hints.read_only = writes == 0;
  hints.mostly_reads = writes * 20 < std::max<uint64_t>(lifetime.reads(), 1);
  const double length = static_cast<double>(std::max<uint64_t>(slot.length(), 1));
  hints.linear_passes = static_cast<double>(lifetime.sequential_reads) / length;
  hints.random_passes = static_cast<double>(lifetime.random_reads) / length;
  hints.predicate_selectivity = lifetime.predicate_selectivity();
  return hints;
}

}  // namespace sa::runtime
