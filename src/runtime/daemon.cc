#include "runtime/daemon.h"

#include <algorithm>

#include "adapt/estimator.h"
#include "common/bits.h"
#include "common/macros.h"
#include "smart/restructure.h"

namespace sa::runtime {

AdaptationDaemon::AdaptationDaemon(ArrayRegistry& registry, rts::WorkerPool& pool,
                                   adapt::MachineCaps machine, adapt::ArrayCosts costs,
                                   DaemonOptions options)
    : registry_(&registry),
      pool_(&pool),
      machine_(machine),
      costs_(costs),
      options_(options) {}

AdaptationDaemon::~AdaptationDaemon() { Stop(); }

void AdaptationDaemon::Start() {
  if (thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { ThreadMain(); });
}

void AdaptationDaemon::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void AdaptationDaemon::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    RunOnce();
    lock.lock();
  }
}

int AdaptationDaemon::RunOnce() {
  int restructured = 0;
  for (ArraySlot* slot : registry_->slots()) {
    const SlotSample sample = slot->DrainSample();
    if (sample.reads() + sample.writes < options_.min_sampled_accesses ||
        sample.seconds <= 0.0) {
      continue;
    }
    const adapt::WorkloadCounters counters =
        SynthesizeCounters(sample, slot->length(), machine_, options_.cycles_per_access);
    restructured += AdaptSlot(*slot, counters) ? 1 : 0;
  }
  // Retired versions from this pass (and stragglers from earlier ones)
  // become reclaimable as reader pins drain; two passes advance the epoch
  // far enough for the previous pass's garbage.
  registry_->Reclaim();
  passes_.fetch_add(1, std::memory_order_relaxed);
  return restructured;
}

bool AdaptationDaemon::AdaptSlot(ArraySlot& slot, const adapt::WorkloadCounters& counters) {
  // Pin while reading the source: only this daemon publishes today, but the
  // pin keeps the rebuild correct even with other publishers around.
  const EpochManager::PinHandle pin = registry_->epoch().Pin();
  const uint64_t writes_before = slot.write_count();
  const ArrayVersion* version = slot.Current();
  const smart::SmartArray& source = *version->storage;

  // Data width: the narrowest width holding every current element, floored
  // by the widest value ever written so a racing writer cannot overflow a
  // narrowed rebuild (TryRestructure still catches the residual race).
  const uint32_t data_bits =
      std::max(smart::MinimalBits(*pool_, source), slot.max_written_bits());

  adapt::SelectorInputs inputs;
  inputs.machine = machine_;
  inputs.hints = HintsFor(slot);
  inputs.counters = counters;
  inputs.costs = costs_;
  inputs.compression_ratio = static_cast<double>(data_bits) / 64.0;
  const adapt::SelectorResult result = adapt::ChooseConfiguration(inputs);

  const adapt::Configuration current{source.placement(), source.bits() < 64};
  if (result.chosen == current) {
    registry_->epoch().Unpin(pin);
    return false;
  }

  // Hysteresis (shared with AdaptiveArray::MaybeAdapt): the estimated win
  // over the *current* configuration must clear the margin.
  const double current_speedup = adapt::EstimateConfigSpeedup(machine_, counters, costs_,
                                                              current, inputs.compression_ratio);
  const double chosen_speedup = adapt::EstimateConfigSpeedup(
      machine_, counters, costs_, result.chosen, inputs.compression_ratio);
  if (chosen_speedup < current_speedup * (1.0 + options_.min_predicted_win)) {
    registry_->epoch().Unpin(pin);
    return false;
  }

  const uint32_t new_bits = result.chosen.compressed ? data_bits : 64;
  auto rebuilt =
      smart::TryRestructure(*pool_, source, result.chosen.placement, new_bits,
                            registry_->topology());
  registry_->epoch().Unpin(pin);
  if (rebuilt == nullptr) {
    // A racing write stored a value wider than the target width mid-scan;
    // the next cycle re-measures and retries.
    return false;
  }
  if (!registry_->Publish(slot, std::move(rebuilt), writes_before)) {
    // Writes raced the rebuild; drop it and retry next cycle.
    return false;
  }
  adaptations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

adapt::WorkloadCounters AdaptationDaemon::SynthesizeCounters(const SlotSample& sample,
                                                             uint64_t length,
                                                             const adapt::MachineCaps& machine,
                                                             double cycles_per_access) {
  adapt::WorkloadCounters c;
  const double accesses =
      static_cast<double>(sample.reads() + sample.writes) / std::max(sample.seconds, 1e-9);
  c.accesses_per_second = accesses;
  c.elem_bytes = 8.0;
  c.dataset_bytes = static_cast<double>(length) * 8.0;
  c.random_fraction =
      sample.reads() == 0
          ? 0.0
          : static_cast<double>(sample.random_reads) / static_cast<double>(sample.reads());

  const double sockets = std::max(1, machine.sockets);
  const double demand_per_socket = accesses * c.elem_bytes / sockets;
  c.bw_current_memory = std::max(1.0, demand_per_socket);
  c.exec_current_per_socket = std::max(1.0, accesses / sockets * cycles_per_access);
  // Interleaved profiling shape: each socket's team pulls half its bytes
  // across the interconnect.
  c.max_mem_utilization =
      machine.bw_max_memory > 0.0 ? std::min(1.0, demand_per_socket / machine.bw_max_memory)
                                  : 0.0;
  c.max_ic_utilization = machine.bw_max_interconnect > 0.0
                             ? std::min(1.0, demand_per_socket * 0.5 / machine.bw_max_interconnect)
                             : 0.0;
  return c;
}

adapt::SoftwareHints AdaptationDaemon::HintsFor(const ArraySlot& slot) {
  const SlotSample lifetime = slot.LifetimeSample();
  adapt::SoftwareHints hints;
  hints.read_only = lifetime.writes == 0;
  hints.mostly_reads = lifetime.writes * 20 < std::max<uint64_t>(lifetime.reads(), 1);
  const double length = static_cast<double>(std::max<uint64_t>(slot.length(), 1));
  hints.linear_passes = static_cast<double>(lifetime.sequential_reads) / length;
  hints.random_passes = static_cast<double>(lifetime.random_reads) / length;
  return hints;
}

}  // namespace sa::runtime
