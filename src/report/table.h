// Plain-text table formatting for the benchmark binaries: aligned columns,
// printed in the layout EXPERIMENTS.md records (paper value vs measured).
#ifndef SA_REPORT_TABLE_H_
#define SA_REPORT_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace sa::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);
  // Separator line between row groups.
  Table& AddRule();

  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

// Number formatting helpers (fixed precision, no locale surprises).
std::string Num(double value, int precision = 1);
std::string Ms(double seconds);        // "123.4 ms"
std::string Sec(double seconds);       // "12.3 s"
std::string Gbps(double gbps);         // "43.8 GB/s"
std::string Giga(double count);        // "21.4e9"
std::string Gib(double bytes);         // "4.00 GiB"
std::string Pct(double fraction);      // "87.2%"

}  // namespace sa::report

#endif  // SA_REPORT_TABLE_H_
