#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/macros.h"

namespace sa::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  SA_CHECK_MSG(cells.size() == headers_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::AddRule() {
  rows_.emplace_back();
  return *this;
}

void Table::Print(std::ostream& os) const { os << ToString(); }

std::string Table::ToString() const {
  std::vector<size_t> width(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << "  " << row[i] << std::string(width[i] - row[i].size(), ' ');
    }
    os << "\n";
  };
  auto emit_rule = [&] {
    for (const size_t w : width) {
      os << "  " << std::string(w, '-');
    }
    os << "\n";
  };
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return os.str();
}

std::string Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Ms(double seconds) { return Num(seconds * 1e3, 1) + " ms"; }
std::string Sec(double seconds) { return Num(seconds, 2) + " s"; }
std::string Gbps(double gbps) { return Num(gbps, 1) + " GB/s"; }
std::string Giga(double count) { return Num(count / 1e9, 1) + "e9"; }
std::string Gib(double bytes) { return Num(bytes / (1024.0 * 1024.0 * 1024.0), 2) + " GiB"; }
std::string Pct(double fraction) { return Num(fraction * 100.0, 1) + "%"; }

}  // namespace sa::report
