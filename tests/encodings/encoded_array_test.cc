// Round-trip and footprint properties of every encoding x placement.
#include <gtest/gtest.h>

#include "common/random.h"
#include "encodings/encoded_array.h"

namespace sa::encodings {
namespace {

class EncodedArrayTest : public ::testing::TestWithParam<Encoding> {
 protected:
  EncodedArrayTest() : topo_(platform::Topology::Synthetic(2, 2)) {}

  void VerifyRoundTrip(const std::vector<uint64_t>& values,
                       const smart::PlacementSpec& placement) {
    const auto array = EncodedArray::Encode(values, GetParam(), placement, topo_);
    ASSERT_EQ(array->encoding(), GetParam());
    ASSERT_EQ(array->length(), values.size());
    // Random access.
    for (uint64_t i = 0; i < values.size(); i += 7) {
      ASSERT_EQ(array->Get(i, 0), values[i]) << "index " << i;
    }
    // Scan decode, with odd boundaries (degenerating gracefully for tiny
    // inputs).
    const uint64_t begin = values.size() > 6 ? values.size() / 3 + 1 : 0;
    const uint64_t end = values.size() > 6 ? values.size() - 2 : values.size();
    std::vector<uint64_t> out(end - begin);
    array->Decode(begin, end, 0, out.data());
    for (uint64_t i = begin; i < end; ++i) {
      ASSERT_EQ(out[i - begin], values[i]) << "decode index " << i;
    }
  }

  platform::Topology topo_;
};

std::vector<uint64_t> MixedData(size_t n) {
  // Runs + jitter + a large base: exercises every encoding non-trivially.
  std::vector<uint64_t> v(n);
  Xoshiro256 rng(7);
  uint64_t current = 1 << 20;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Below(10) == 0) {
      current = (1 << 20) + rng.Below(1 << 10);
    }
    v[i] = current;
  }
  return v;
}

TEST_P(EncodedArrayTest, RoundTripInterleaved) {
  VerifyRoundTrip(MixedData(10'000), smart::PlacementSpec::Interleaved());
}

TEST_P(EncodedArrayTest, RoundTripReplicated) {
  VerifyRoundTrip(MixedData(5'000), smart::PlacementSpec::Replicated());
}

TEST_P(EncodedArrayTest, RoundTripSingleElement) {
  VerifyRoundTrip({42}, smart::PlacementSpec::OsDefault());
}

TEST_P(EncodedArrayTest, RoundTripConstantData) {
  VerifyRoundTrip(std::vector<uint64_t>(1000, 7), smart::PlacementSpec::OsDefault());
}

TEST_P(EncodedArrayTest, RoundTripNonChunkAlignedLength) {
  auto values = MixedData(777);
  VerifyRoundTrip(values, smart::PlacementSpec::Interleaved());
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodedArrayTest,
                         ::testing::Values(Encoding::kBitPacked, Encoding::kDictionary,
                                           Encoding::kRunLength, Encoding::kFrameOfReference),
                         [](const auto& info) {
                           std::string name = ToString(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(EncodedArrayFootprintTest, EachTechniqueWinsOnItsData) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  const auto placement = smart::PlacementSpec::Interleaved();
  auto footprint = [&](const std::vector<uint64_t>& values, Encoding e) {
    return EncodedArray::Encode(values, e, placement, topo)->footprint_bytes();
  };

  // Long runs: RLE beats bit packing by orders of magnitude.
  std::vector<uint64_t> runs(100'000);
  for (size_t i = 0; i < runs.size(); ++i) {
    runs[i] = i / 5000;
  }
  EXPECT_LT(footprint(runs, Encoding::kRunLength) * 10,
            footprint(runs, Encoding::kBitPacked));

  // Few distinct huge values: dictionary wins.
  std::vector<uint64_t> lowcard(100'000);
  Xoshiro256 rng(4);
  for (auto& v : lowcard) {
    v = (uint64_t{1} << 50) + rng.Below(16);
  }
  EXPECT_LT(footprint(lowcard, Encoding::kDictionary) * 2,
            footprint(lowcard, Encoding::kBitPacked));

  // Clustered large values: frame-of-reference wins.
  std::vector<uint64_t> clustered(100'000);
  for (size_t i = 0; i < clustered.size(); ++i) {
    clustered[i] = (uint64_t{1} << 40) + i + rng.Below(32);
  }
  EXPECT_LT(footprint(clustered, Encoding::kFrameOfReference) * 2,
            footprint(clustered, Encoding::kBitPacked));
}

TEST(EncodedArrayFootprintTest, ReplicationDoublesEveryEncoding) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  const auto values = MixedData(20'000);
  for (const Encoding e : {Encoding::kBitPacked, Encoding::kDictionary, Encoding::kRunLength,
                           Encoding::kFrameOfReference}) {
    const auto single =
        EncodedArray::Encode(values, e, smart::PlacementSpec::Interleaved(), topo);
    const auto repl = EncodedArray::Encode(values, e, smart::PlacementSpec::Replicated(), topo);
    EXPECT_EQ(repl->footprint_bytes(), 2 * single->footprint_bytes()) << ToString(e);
    // Replica 1 serves the same data.
    for (uint64_t i = 0; i < values.size(); i += 1111) {
      EXPECT_EQ(repl->Get(i, 1), values[i]);
    }
  }
}

TEST(EncodedArrayAutoTest, AutoSelectionMatchesChooser) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  std::vector<uint64_t> runs(50'000);
  for (size_t i = 0; i < runs.size(); ++i) {
    runs[i] = i / 1000;
  }
  const auto array =
      EncodedArray::Encode(runs, std::nullopt, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_EQ(array->encoding(), ChooseEncoding(AnalyzeValues(runs)));
  EXPECT_EQ(array->encoding(), Encoding::kRunLength);
  EXPECT_EQ(array->Get(12'345, 0), runs[12'345]);
}

TEST(RunLengthArrayTest, RunBoundaryAccess) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  std::vector<uint64_t> values;
  for (uint64_t run = 0; run < 50; ++run) {
    for (uint64_t i = 0; i < run + 1; ++i) {
      values.push_back(run * 3);
    }
  }
  RunLengthArray array(values, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_EQ(array.num_runs(), 50u);
  for (uint64_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(array.Get(i, 0), values[i]) << "index " << i;
  }
}

TEST(DictionaryArrayTest, CodesAreOrderPreserving) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  const std::vector<uint64_t> values = {100, 5, 100, 42, 5, 99};
  DictionaryArray array(values, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_EQ(array.dictionary_size(), 4u);  // {5, 42, 99, 100}
  EXPECT_EQ(array.code_bits(), 2u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(array.Get(i, 0), values[i]);
  }
}

TEST(FrameOfReferenceTest, DeltaBitsAreChunkLocal) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  // Values huge, chunk-local spread tiny: deltas must be narrow.
  std::vector<uint64_t> values(256);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = (uint64_t{1} << 55) + (i / kChunkElems) * 1'000'000 + (i % 7);
  }
  FrameOfReferenceArray array(values, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_LE(array.delta_bits(), 3u);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(array.Get(i, 0), values[i]);
  }
}

}  // namespace
}  // namespace sa::encodings
