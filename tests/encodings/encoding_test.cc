// Statistics and technique selection (§7's "dynamically select the correct
// technique").
#include <gtest/gtest.h>

#include "common/random.h"
#include "encodings/encoding.h"

namespace sa::encodings {
namespace {

std::vector<uint64_t> LowCardinality(size_t n) {
  std::vector<uint64_t> v(n);
  Xoshiro256 rng(1);
  for (auto& x : v) {
    x = 1'000'000 + rng.Below(8);  // 8 distinct large values
  }
  return v;
}

std::vector<uint64_t> LongRuns(size_t n) {
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (i / 1000) % 5;  // runs of 1000
  }
  return v;
}

std::vector<uint64_t> ClusteredTimestamps(size_t n) {
  // Large base with small local jitter: classic frame-of-reference case.
  std::vector<uint64_t> v(n);
  Xoshiro256 rng(2);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (uint64_t{1} << 60) + i * 16 + rng.Below(16);
  }
  return v;
}

std::vector<uint64_t> SmallUniform(size_t n) {
  std::vector<uint64_t> v(n);
  Xoshiro256 rng(3);
  for (auto& x : v) {
    x = rng.Below(1 << 10);  // dense 10-bit values
  }
  return v;
}

TEST(AnalyzeValuesTest, ComputesBasicStats) {
  const std::vector<uint64_t> v = {5, 5, 5, 9, 9, 2};
  const DataStats stats = AnalyzeValues(v);
  EXPECT_EQ(stats.count, 6u);
  EXPECT_EQ(stats.min_value, 2u);
  EXPECT_EQ(stats.max_value, 9u);
  EXPECT_EQ(stats.distinct_values, 3u);
  EXPECT_EQ(stats.runs, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_run_length(), 2.0);
}

TEST(AnalyzeValuesTest, EmptyInput) {
  const DataStats stats = AnalyzeValues({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.runs, 0u);
}

TEST(AnalyzeValuesTest, DistinctCountCaps) {
  std::vector<uint64_t> v(DataStats::kDistinctCap + 100);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = i;
  }
  const DataStats stats = AnalyzeValues(v);
  EXPECT_GT(stats.distinct_values, DataStats::kDistinctCap);
}

TEST(ChooseEncodingTest, PicksDictionaryForLowCardinalityLargeValues) {
  EXPECT_EQ(ChooseEncoding(AnalyzeValues(LowCardinality(50'000))), Encoding::kDictionary);
}

TEST(ChooseEncodingTest, PicksRunLengthForLongRuns) {
  EXPECT_EQ(ChooseEncoding(AnalyzeValues(LongRuns(50'000))), Encoding::kRunLength);
}

TEST(ChooseEncodingTest, PicksFrameOfReferenceForClusteredLargeValues) {
  EXPECT_EQ(ChooseEncoding(AnalyzeValues(ClusteredTimestamps(50'000))),
            Encoding::kFrameOfReference);
}

TEST(ChooseEncodingTest, KeepsBitPackingForDenseSmallValues) {
  EXPECT_EQ(ChooseEncoding(AnalyzeValues(SmallUniform(50'000))), Encoding::kBitPacked);
}

TEST(EstimateBitsTest, EstimatesAreOrderedSanely) {
  const DataStats runs = AnalyzeValues(LongRuns(10'000));
  EXPECT_LT(EstimateBitsPerElement(Encoding::kRunLength, runs),
            EstimateBitsPerElement(Encoding::kBitPacked, runs));
  const DataStats cluster = AnalyzeValues(ClusteredTimestamps(10'000));
  EXPECT_LT(EstimateBitsPerElement(Encoding::kFrameOfReference, cluster),
            EstimateBitsPerElement(Encoding::kBitPacked, cluster));
}

}  // namespace
}  // namespace sa::encodings
