// Bit-utility properties underpinning the packed layout.
#include <gtest/gtest.h>

#include "common/bits.h"

namespace sa {
namespace {

TEST(BitsTest, LowMaskValues) {
  EXPECT_EQ(LowMask(1), 0x1u);
  EXPECT_EQ(LowMask(8), 0xFFu);
  EXPECT_EQ(LowMask(33), 0x1FFFFFFFFULL);
  EXPECT_EQ(LowMask(63), ~uint64_t{0} >> 1);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
}

TEST(BitsTest, BitsForValueBoundaries) {
  EXPECT_EQ(BitsForValue(0), 1u);
  EXPECT_EQ(BitsForValue(1), 1u);
  EXPECT_EQ(BitsForValue(2), 2u);
  EXPECT_EQ(BitsForValue(255), 8u);
  EXPECT_EQ(BitsForValue(256), 9u);
  EXPECT_EQ(BitsForValue(~uint64_t{0}), 64u);
}

TEST(BitsTest, BitsForValueIsMinimal) {
  for (uint32_t b = 1; b <= 63; ++b) {
    const uint64_t max_with_b = LowMask(b);
    EXPECT_EQ(BitsForValue(max_with_b), b);
    EXPECT_EQ(BitsForValue(max_with_b + 1), b + 1);
  }
}

TEST(BitsTest, BitsForCount) {
  EXPECT_EQ(BitsForCount(0), 1u);
  EXPECT_EQ(BitsForCount(1), 1u);
  EXPECT_EQ(BitsForCount(2), 1u);   // values {0,1}
  EXPECT_EQ(BitsForCount(3), 2u);   // values {0,1,2}
  EXPECT_EQ(BitsForCount(256), 8u);
  EXPECT_EQ(BitsForCount(257), 9u);
}

class WordsTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WordsTest, ChunkGeometryHolds) {
  const uint32_t bits = GetParam();
  EXPECT_EQ(WordsPerChunk(bits), bits);
  // Whole chunks: exact.
  EXPECT_EQ(WordsForLength(kChunkElems, bits), bits);
  EXPECT_EQ(WordsForLength(3 * kChunkElems, bits), 3ull * bits);
  // Empty is zero words.
  EXPECT_EQ(WordsForLength(0, bits), 0u);
}

TEST_P(WordsTest, PartialChunkIsTight) {
  const uint32_t bits = GetParam();
  for (const uint64_t tail : {uint64_t{1}, uint64_t{17}, uint64_t{63}}) {
    const uint64_t words = WordsForLength(tail, bits);
    // Enough bits for the tail, and never more than a full chunk.
    EXPECT_GE(words * kWordBits, tail * bits);
    EXPECT_LE(words, WordsPerChunk(bits));
    // Minimal: one fewer word would not hold the tail.
    EXPECT_LT((words - 1) * kWordBits, tail * bits);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, WordsTest, ::testing::Range(1u, 65u));

TEST(BitsTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
  EXPECT_EQ(AlignUp(4097, 4096), 8192u);
}

}  // namespace
}  // namespace sa
