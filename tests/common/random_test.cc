#include <gtest/gtest.h>

#include "common/random.h"

namespace sa {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, BelowStaysInBound) {
  Xoshiro256 rng(77);
  for (const uint64_t bound : {uint64_t{1}, uint64_t{3}, uint64_t{1000}, uint64_t{1} << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RandomTest, BelowCoversRangeRoughlyUniformly) {
  Xoshiro256 rng(99);
  int buckets[10] = {};
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    ++buckets[rng.Below(10)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);  // within 10% relative
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RandomTest, SplitMixIsAHash) {
  // Stateless, deterministic, and spreads consecutive inputs.
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  uint64_t bits_changed = SplitMix64(100) ^ SplitMix64(101);
  EXPECT_GT(std::popcount(bits_changed), 10);
}

}  // namespace
}  // namespace sa
