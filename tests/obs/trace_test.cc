// Trace ring: event round-trips, cursor advance, wraparound overwrite
// accounting, kind names, and a concurrent emit/drain torture run (the TSan
// witness for the all-atomic cell protocol).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "obs/trace.h"

namespace sa::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    TraceResetForTesting();
  }
  void TearDown() override {
    SetEnabled(true);
    TraceResetForTesting();
  }
};

TEST_F(TraceTest, EventsRoundTripThroughDrain) {
  EmitTrace(kTraceSampleDrain, "ranks", 100, 20, 3'000'000, 0);
  EmitTrace(kTraceDecision, "ranks", 0x400302, 0x0a0300, 0, 125'000);
  EmitTrace(kTraceEpochAdvance, nullptr, 7);

  uint64_t cursor = 0;
  TraceEvent events[8];
  ASSERT_EQ(TraceDrain(&cursor, events, 8), 3u);
  EXPECT_EQ(cursor, 3u);
  EXPECT_EQ(TraceDropped(), 0u);

  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, static_cast<uint32_t>(kTraceSampleDrain));
  EXPECT_STREQ(events[0].slot, "ranks");
  EXPECT_EQ(events[0].a, 100u);
  EXPECT_EQ(events[0].b, 20u);
  EXPECT_EQ(events[0].c, 3'000'000u);
  EXPECT_EQ(events[0].d, 0u);
  EXPECT_GT(events[0].ns, 0u);

  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].kind, static_cast<uint32_t>(kTraceDecision));
  EXPECT_EQ(events[1].d, 125'000u);
  EXPECT_GE(events[1].ns, events[0].ns);

  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_STREQ(events[2].slot, "");  // nullptr slot -> empty name

  // Nothing new: the cursor stays put and no events are fabricated.
  EXPECT_EQ(TraceDrain(&cursor, events, 8), 0u);
  EXPECT_EQ(cursor, 3u);
}

TEST_F(TraceTest, OverLongSlotNamesAreTruncatedNotOverflowed) {
  const char* long_name = "a-slot-name-much-longer-than-the-24-byte-field";
  EmitTrace(kTracePublish, long_name, 1, 1);
  uint64_t cursor = 0;
  TraceEvent ev;
  ASSERT_EQ(TraceDrain(&cursor, &ev, 1), 1u);
  EXPECT_EQ(std::strlen(ev.slot), sizeof(ev.slot) - 1);
  EXPECT_EQ(std::strncmp(ev.slot, long_name, sizeof(ev.slot) - 1), 0);
}

TEST_F(TraceTest, WraparoundOverwritesOldestAndCountsDropped) {
  constexpr uint64_t kOverflow = 100;
  const uint64_t total = kTraceCapacity + kOverflow;
  for (uint64_t i = 0; i < total; ++i) {
    EmitTrace(kTracePublish, "w", i, 1);
  }
  EXPECT_EQ(TraceHead(), total);

  // A cursor that never drained lost exactly the overwritten prefix; the
  // survivors are the newest kTraceCapacity events, in order.
  uint64_t cursor = 0;
  std::vector<TraceEvent> events(kTraceCapacity);
  size_t received = 0;
  uint64_t expected_seq = kOverflow;
  for (;;) {
    const size_t n = TraceDrain(&cursor, events.data(), events.size());
    if (n == 0) {
      break;
    }
    for (size_t k = 0; k < n; ++k) {
      ASSERT_EQ(events[k].seq, expected_seq++);
      ASSERT_EQ(events[k].a, events[k].seq);  // payload written by that lap
    }
    received += n;
  }
  EXPECT_EQ(received, kTraceCapacity);
  EXPECT_EQ(TraceDropped(), kOverflow);
  EXPECT_EQ(cursor, total);
}

TEST_F(TraceTest, IndependentCursorsEachPayTheirOwnDrops) {
  for (uint64_t i = 0; i < kTraceCapacity + 10; ++i) {
    EmitTrace(kTraceEpochAdvance, nullptr, i);
  }
  uint64_t c1 = 0;
  uint64_t c2 = 0;
  TraceEvent ev;
  ASSERT_EQ(TraceDrain(&c1, &ev, 1), 1u);
  ASSERT_EQ(TraceDrain(&c2, &ev, 1), 1u);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(TraceDropped(), 20u);  // 10 overwritten, charged to both cursors
}

TEST_F(TraceTest, KindNamesCoverTheEnum) {
  EXPECT_STREQ(TraceKindName(kTraceNone), "none");
  EXPECT_STREQ(TraceKindName(kTraceSampleDrain), "sample_drain");
  EXPECT_STREQ(TraceKindName(kTraceDecision), "decision");
  EXPECT_STREQ(TraceKindName(kTraceRestructureBegin), "restructure_begin");
  EXPECT_STREQ(TraceKindName(kTraceRestructureEnd), "restructure_end");
  EXPECT_STREQ(TraceKindName(kTracePublish), "publish");
  EXPECT_STREQ(TraceKindName(kTraceEpochAdvance), "epoch_advance");
  EXPECT_STREQ(TraceKindName(kTraceEpochReclaim), "epoch_reclaim");
  EXPECT_STREQ(TraceKindName(9999), "unknown");
}

TEST_F(TraceTest, DisabledEmitsNothing) {
  SetEnabled(false);
  EmitTrace(kTracePublish, "off", 1, 1);
  EXPECT_EQ(TraceHead(), 0u);
}

// Torture: emitters lap the ring while a drainer chases them. Every drained
// event must be internally consistent (seq strictly increasing, payload
// matching what some writer stored for that sequence), and the final
// drained + dropped accounting must cover the whole stream. All cell words
// are atomics, so under the TSan job this doubles as the race witness.
TEST_F(TraceTest, ConcurrentEmitAndDrainStayConsistent) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50'000;
  std::atomic<bool> writers_done{false};
  std::atomic<bool> failed{false};

  std::thread drainer([&] {
    uint64_t cursor = 0;
    uint64_t last_seq = 0;
    bool any = false;
    std::vector<TraceEvent> buf(256);
    auto check = [&] {
      const size_t n = TraceDrain(&cursor, buf.data(), buf.size());
      for (size_t k = 0; k < n; ++k) {
        const TraceEvent& ev = buf[k];
        // Payload invariant every writer maintains: b == a ^ 0x5a.
        if (ev.kind != static_cast<uint32_t>(kTracePublish) ||
            ev.b != (ev.a ^ 0x5a) || (any && ev.seq <= last_seq)) {
          failed.store(true, std::memory_order_relaxed);
        }
        last_seq = ev.seq;
        any = true;
      }
      return n;
    };
    while (!writers_done.load(std::memory_order_acquire)) {
      check();
    }
    while (check() != 0) {  // drain the tail
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t a = (static_cast<uint64_t>(w) << 32) | i;
        EmitTrace(kTracePublish, "torture", a, a ^ 0x5a);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  writers_done.store(true, std::memory_order_release);
  drainer.join();

  EXPECT_FALSE(failed.load()) << "drained a torn or out-of-order event";
  EXPECT_EQ(TraceHead(), kWriters * kPerWriter);
}

}  // namespace
}  // namespace sa::obs
