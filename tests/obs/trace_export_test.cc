// Chrome trace-event JSON export (obs/export.h ChromeTraceJson +
// saObsTraceExportJson): span names, the per-adaptation trace id threading,
// the null-buffer sizing contract, and the accumulator's independence from
// the raw saObsTraceDrain cursor.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/entry_points.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace sa::obs {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  TraceExportTest() { saObsReset(); }
  ~TraceExportTest() override { saObsReset(); }
};

// One synthetic adaptation, every event carrying trace id `id` in its
// documented payload slot (trace.h).
void EmitAdaptation(uint64_t id, const char* slot) {
  EmitTrace(kTraceSampleDrain, slot, 9000, 0, 250000, (0 << 0) | (id << 1));
  EmitTrace(kTraceDecision, slot, 0x400100, 0x0a0200, kDecisionAccepted | (id << 8), 310000);
  EmitTrace(kTraceRestructureBegin, slot, 0x400100, 0x0a0200, id);
  EmitTrace(kTraceRestructureEnd, slot, 5000, 3000, 2500, 1 | (id << 1));
  EmitTrace(kTracePublish, slot, 2, 1, id);
  EmitTrace(kTraceVersionReclaim, slot, 1, 0, id);
}

TEST_F(TraceExportTest, NewTraceKindsHaveNames) {
  EXPECT_STREQ(TraceKindName(kTraceFlapHold), "flap_hold");
  EXPECT_STREQ(TraceKindName(kTraceVersionReclaim), "version_reclaim");
  EXPECT_STREQ(saObsTraceKindName(kTraceFlapHold), "flap_hold");
}

TEST_F(TraceExportTest, EmptyExportIsStillAValidDocument) {
  const std::string json = ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TraceExportTest, ExportCarriesSpansLinkedByTraceId) {
  EmitAdaptation(42, "ranks");
  EmitTrace(kTraceFlapHold, "ranks", 0x400100, 0x0a0200, 43, 7);

  const std::string json = ChromeTraceJson();
  // Every lifecycle span is present, by its TraceKindName.
  for (const char* name : {"sample_drain", "decision", "restructure_begin",
                           "restructure_end", "publish", "version_reclaim", "flap_hold"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""), std::string::npos)
        << name;
  }
  // The decision/restructure/publish/reclaim chain shares args.trace_id 42;
  // the flap hold carries its own id 43.
  size_t count42 = 0;
  for (size_t pos = 0; (pos = json.find("\"trace_id\":42", pos)) != std::string::npos;
       ++pos) {
    ++count42;
  }
  EXPECT_EQ(count42, 6u);
  EXPECT_NE(json.find("\"trace_id\":43"), std::string::npos);
  // Kind-specific payloads survive the flag-bit unpacking.
  EXPECT_NE(json.find("\"wall_ns\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":0"), std::string::npos);
  EXPECT_NE(json.find("\"hold_remaining\":7"), std::string::npos);
  EXPECT_NE(json.find("\"slot\":\"ranks\""), std::string::npos);
  // The restructure span's duration is its measured wall time (5000 ns ->
  // 5 us), not the nominal point-event slice.
  EXPECT_NE(json.find("\"dur\":5.000"), std::string::npos);
}

TEST_F(TraceExportTest, CAbiSizingContractAndAccumulatorStability) {
  EmitAdaptation(7, "s");

  // Null-buffer call sizes; it must not consume the events it drained.
  const uint64_t len = saObsTraceExportJson(nullptr, 0);
  ASSERT_GT(len, 0u);
  std::vector<char> buf(len + 1);
  EXPECT_EQ(saObsTraceExportJson(buf.data(), buf.size()), len);
  const std::string json(buf.data());
  EXPECT_EQ(json.size(), len);
  EXPECT_NE(json.find("\"trace_id\":7"), std::string::npos);

  // A short buffer truncates but still reports the full length and
  // NUL-terminates.
  std::vector<char> small(16);
  EXPECT_EQ(saObsTraceExportJson(small.data(), small.size()), len);
  EXPECT_EQ(small[15], '\0');
  EXPECT_EQ(std::string(small.data()), json.substr(0, 15));
}

TEST_F(TraceExportTest, ExportCursorIsIndependentOfRawDrain) {
  EmitAdaptation(11, "s");
  // A raw drainer consumes the stream first...
  SaObsTraceEvent events[64];
  EXPECT_GT(saObsTraceDrain(events, 64), 0);
  // ...and the export still sees every event through its own cursor.
  const std::string json = ChromeTraceJson();
  EXPECT_NE(json.find("\"trace_id\":11"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"publish\""), std::string::npos);
}

TEST_F(TraceExportTest, ResetClearsTheAccumulator) {
  EmitAdaptation(5, "s");
  EXPECT_NE(ChromeTraceJson().find("\"trace_id\":5"), std::string::npos);
  saObsReset();
  EXPECT_NE(ChromeTraceJson().find("\"traceEvents\":[]"), std::string::npos);
}

}  // namespace
}  // namespace sa::obs
