// Exposition surfaces: Prometheus text, JSON, and the C ABI (metric
// snapshot, histograms, by-name lookup, trace drain, text dump truncation,
// reset).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/entry_points.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace sa::obs {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override { saObsReset(); }
  void TearDown() override { saObsReset(); }
};

TEST_F(ExportTest, PrometheusTextCarriesCountersGaugesAndHistograms) {
  Count(kPublishes, 3);
  GaugeAdd(kRegistrySlots, 2);
  Record(kRestructureWallNs, 1000);
  Record(kRestructureWallNs, 2000);

  const std::string text = PrometheusText();
  EXPECT_NE(text.find("# TYPE sa_publishes_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("\nsa_publishes_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sa_registry_slots gauge\n"), std::string::npos);
  EXPECT_NE(text.find("\nsa_registry_slots 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sa_restructure_wall_ns histogram\n"), std::string::npos);
  // Cumulative buckets: both samples land below 2048, so le="2047" and +Inf
  // agree with _count.
  EXPECT_NE(text.find("sa_restructure_wall_ns_bucket{le=\"2047\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("sa_restructure_wall_ns_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("sa_restructure_wall_ns_sum 3000\n"), std::string::npos);
  EXPECT_NE(text.find("sa_restructure_wall_ns_count 2\n"), std::string::npos);
  // The trace stream is exported as synthetic counters.
  EXPECT_NE(text.find("# TYPE sa_trace_events_total counter\n"), std::string::npos);
}

TEST_F(ExportTest, JsonTextIsWellFormedEnoughToGrep) {
  Count(kSnapshotAcquires, 7);
  const std::string json = JsonText();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"sa_snapshot_acquires_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"compiled_in\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST_F(ExportTest, CAbiSnapshotSizesAndFills) {
  Count(kEpochAdvances, 11);
  GaugeAdd(kDaemonRunning, 1);

  const int total = saObsSnapshot(nullptr, 0);
  EXPECT_EQ(total, static_cast<int>(kCounterIdCount) + static_cast<int>(kGaugeIdCount));

  std::vector<SaObsMetric> metrics(static_cast<size_t>(total));
  EXPECT_EQ(saObsSnapshot(metrics.data(), total), total);
  bool saw_counter = false;
  bool saw_gauge = false;
  for (const SaObsMetric& m : metrics) {
    if (std::strcmp(m.name, "sa_epoch_advances_total") == 0) {
      EXPECT_EQ(m.kind, SA_OBS_METRIC_COUNTER);
      EXPECT_EQ(m.value, 11u);
      saw_counter = true;
    }
    if (std::strcmp(m.name, "sa_daemon_running") == 0) {
      EXPECT_EQ(m.kind, SA_OBS_METRIC_GAUGE);
      EXPECT_EQ(m.value, 1u);
      saw_gauge = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);

  // A short buffer is filled partially but the total is still reported.
  SaObsMetric two[2];
  EXPECT_EQ(saObsSnapshot(two, 2), total);
  EXPECT_EQ(two[0].kind, SA_OBS_METRIC_COUNTER);
}

TEST_F(ExportTest, CAbiCounterByNameAndHistograms) {
  Count(kRestructures, 4);
  EXPECT_EQ(saObsCounterByName("sa_restructures_total"), 4u);
  EXPECT_EQ(saObsCounterByName("sa_no_such_counter"), 0u);
  EXPECT_EQ(saObsCounterByName(nullptr), 0u);

  Record(kDaemonPassNs, 5);
  const int total = saObsHistograms(nullptr, 0);
  EXPECT_EQ(total, kHistogramIdCount);
  std::vector<SaObsHistogramEntry> hists(static_cast<size_t>(total));
  EXPECT_EQ(saObsHistograms(hists.data(), total), total);
  bool found = false;
  for (const SaObsHistogramEntry& h : hists) {
    if (std::strcmp(h.name, "sa_daemon_pass_ns") == 0) {
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 5u);
      EXPECT_EQ(h.buckets[HistogramBucketIndex(5)], 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExportTest, CAbiPrometheusTextTruncatesSafely) {
  Count(kPublishes, 1);
  const uint64_t full = saObsPrometheusText(nullptr, 0);
  EXPECT_GT(full, 100u);

  char small[16];
  std::memset(small, 'x', sizeof(small));
  EXPECT_EQ(saObsPrometheusText(small, sizeof(small)), full);
  EXPECT_EQ(small[sizeof(small) - 1], '\0');

  std::vector<char> buf(full + 1);
  EXPECT_EQ(saObsPrometheusText(buf.data(), buf.size()), full);
  EXPECT_EQ(std::strlen(buf.data()), full);
}

TEST_F(ExportTest, CAbiResetZeroesEverything) {
  Count(kPublishes, 9);
  EmitTrace(kTracePublish, "r", 1, 1);
  EXPECT_EQ(saObsCompiledIn(), 1);
  saObsReset();
  EXPECT_EQ(saObsCounterByName("sa_publishes_total"), 0u);
  EXPECT_EQ(saObsCounterByName("sa_trace_events_total"), 0u);
  // The global drain cursor rewound with the ring: a fresh event is seen.
  EmitTrace(kTracePublish, "r2", 2, 1);
  SaObsTraceEvent ev;
  ASSERT_EQ(saObsTraceDrain(&ev, 1), 1);
  EXPECT_EQ(ev.seq, 0u);
  EXPECT_STREQ(ev.slot, "r2");
  EXPECT_STREQ(saObsTraceKindName(ev.kind), "publish");
}

}  // namespace
}  // namespace sa::obs
