// Telemetry wired into the adaptation runtime: the silently-dropped-sample
// counters (thin samples, width-overflow aborts, publish refusals), decision
// rejection counters, and the acceptance bar for the trace layer — a full
// adaptation cycle (sample drain -> decision -> restructure -> publish ->
// epoch retire/reclaim) reconstructed end-to-end from saObsTraceDrain.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adapt/adaptive_array.h"
#include "common/log.h"
#include "obs/entry_points.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/daemon.h"
#include "sim/machine_spec.h"

namespace sa::runtime {
namespace {

using obs::CounterValue;

// Same §5.1 memory-bound streaming shape as daemon_test.cc: the selector
// deterministically picks replicated + compressed for a read-only slot.
adapt::WorkloadCounters MemBoundStreamingCounters(const adapt::MachineCaps& caps) {
  adapt::WorkloadCounters c;
  c.exec_current_per_socket = caps.exec_max_per_socket * 0.2;
  c.bw_current_memory = std::min(caps.bw_max_memory, 2 * caps.bw_max_interconnect) * 0.95;
  c.max_mem_utilization = 0.95;
  c.max_ic_utilization = 0.92;
  c.accesses_per_second = c.bw_current_memory * 2 / 8.0;
  c.elem_bytes = 8.0;
  c.dataset_bytes = 1e9;
  return c;
}

class ObsRuntimeTest : public ::testing::Test {
 protected:
  ObsRuntimeTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}),
        registry_(topo_),
        machine_(adapt::MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core())),
        costs_(adapt::ArrayCosts::FromCostModel(sim::CostModel::Default())) {
    saObsReset();
  }
  ~ObsRuntimeTest() override {
    testing::SetPrePublishHook(nullptr);
    saObsReset();
  }

  AdaptationDaemon MakeDaemon(DaemonOptions options = {}) {
    return AdaptationDaemon(registry_, pool_, machine_, costs_, options);
  }

  ArraySlot* MakeReadOnlySlot(const std::string& name, uint64_t n) {
    ArraySlot* slot = registry_.Create(name, n, smart::PlacementSpec::Interleaved(), 64);
    auto storage =
        smart::SmartArray::Allocate(n, smart::PlacementSpec::Interleaved(), 64, topo_);
    for (uint64_t i = 0; i < n; ++i) {
      storage->Init(i, i % 1024);
    }
    EXPECT_TRUE(registry_.Publish(*slot, std::move(storage), 0));
    for (int pass = 0; pass < 3; ++pass) {
      ArraySnapshot snap = slot->Acquire();
      snap.SumRange(0, n);
    }
    return slot;
  }

  std::vector<SaObsTraceEvent> DrainAll() {
    std::vector<SaObsTraceEvent> all;
    SaObsTraceEvent buf[256];
    for (;;) {
      const int n = saObsTraceDrain(buf, 256);
      if (n <= 0) {
        break;
      }
      all.insert(all.end(), buf, buf + n);
    }
    return all;
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
  ArrayRegistry registry_;
  adapt::MachineCaps machine_;
  adapt::ArrayCosts costs_;
};

// Satellite regression: a drained sample below min_sampled_accesses used to
// vanish without a trace; now it increments sa_daemon_sample_drops_total.
TEST_F(ObsRuntimeTest, ThinSampleIncrementsDropCounter) {
  ArraySlot* slot = registry_.Create("thin", 256, smart::PlacementSpec::Interleaved(), 64);
  {
    ArraySnapshot snap = slot->Acquire();
    snap.Get(0);
    snap.Get(1);  // 2 accesses, far below min_sampled_accesses (4096)
  }
  AdaptationDaemon daemon = MakeDaemon();
  const uint64_t drops_before = CounterValue(obs::kDaemonSampleDrops);
  EXPECT_EQ(daemon.RunOnce(), 0);
  EXPECT_EQ(CounterValue(obs::kDaemonSampleDrops), drops_before + 1);

  // A fully idle slot is not a drop: nothing was sampled.
  EXPECT_EQ(daemon.RunOnce(), 0);
  EXPECT_EQ(CounterValue(obs::kDaemonSampleDrops), drops_before + 1);
  EXPECT_GE(CounterValue(obs::kDaemonPasses), 2u);
}

// Satellite regression, race half: a publish refused by the lost-write check
// also drops the sampled interval, and both counters say so.
TEST_F(ObsRuntimeTest, PublishRefusalIncrementsDropAndLostWriteCounters) {
  ArraySlot* slot = MakeReadOnlySlot("raced", 8192);
  AdaptationDaemon daemon = MakeDaemon();
  testing::SetPrePublishHook([](ArraySlot& s) {
    s.Write(0, 7);  // lands between the rebuild and its publication
  });
  const uint64_t drops_before = CounterValue(obs::kDaemonSampleDrops);
  const uint64_t lost_before = CounterValue(obs::kPublishLostWrite);
  EXPECT_FALSE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  testing::SetPrePublishHook(nullptr);
  EXPECT_EQ(CounterValue(obs::kDaemonSampleDrops), drops_before + 1);
  EXPECT_EQ(CounterValue(obs::kPublishLostWrite), lost_before + 1);
  EXPECT_EQ(slot->sequence(), 1u);  // the refused rebuild never published
}

TEST_F(ObsRuntimeTest, DecisionRejectionsAreCountedByReason) {
  ArraySlot* slot = MakeReadOnlySlot("counted", 4096);
  AdaptationDaemon daemon = MakeDaemon();

  // CPU-bound counters: the chosen configuration equals the current one.
  adapt::WorkloadCounters cpu = MemBoundStreamingCounters(machine_);
  cpu.max_mem_utilization = 0.2;
  cpu.max_ic_utilization = 0.2;
  const uint64_t same_before = CounterValue(obs::kDaemonRejectSame);
  EXPECT_FALSE(daemon.AdaptSlot(*slot, cpu));
  EXPECT_EQ(CounterValue(obs::kDaemonRejectSame), same_before + 1);

  // An unreachable hysteresis margin turns an accept into a margin reject.
  DaemonOptions strict;
  strict.min_predicted_win = 100.0;
  AdaptationDaemon cautious = MakeDaemon(strict);
  const uint64_t margin_before = CounterValue(obs::kDaemonRejectMargin);
  EXPECT_FALSE(cautious.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(CounterValue(obs::kDaemonRejectMargin), margin_before + 1);
}

// Satellite: an AdaptiveArray that wants to move but can't clear the margin
// keeps the current configuration — and that keep has its own counter,
// distinct from both same-config keeps and the daemon's margin rejects.
TEST_F(ObsRuntimeTest, AdaptiveArrayMarginKeepHasDedicatedCounter) {
  const uint64_t n = 4096;
  auto storage =
      smart::SmartArray::Allocate(n, smart::PlacementSpec::Interleaved(), 64, topo_);
  for (uint64_t i = 0; i < n; ++i) {
    storage->Init(i, i % 1024);  // 10 data bits: compression is on the table
  }
  // A margin no prediction can clear: the selector's choice (compressed)
  // differs from the current config, so the keep is by hysteresis alone.
  adapt::AdaptationPolicy cautious;
  cautious.min_predicted_win = 100.0;
  adapt::AdaptiveArray adaptive(std::move(storage), pool_, topo_, machine_,
                                adapt::SoftwareHints{}, costs_, cautious);
  adaptive.ObserveProfile(MemBoundStreamingCounters(machine_));

  const uint64_t keeps_before = CounterValue(obs::kAdaptiveKeepMargin);
  EXPECT_FALSE(adaptive.MaybeAdapt());
  EXPECT_EQ(CounterValue(obs::kAdaptiveKeepMargin), keeps_before + 1);
  EXPECT_EQ(adaptive.adaptations(), 0);

  // With the default margin the same profile adapts — no margin keep.
  auto storage2 =
      smart::SmartArray::Allocate(n, smart::PlacementSpec::Interleaved(), 64, topo_);
  for (uint64_t i = 0; i < n; ++i) {
    storage2->Init(i, i % 1024);
  }
  adapt::AdaptiveArray eager(std::move(storage2), pool_, topo_, machine_,
                             adapt::SoftwareHints{}, costs_, {});
  eager.ObserveProfile(MemBoundStreamingCounters(machine_));
  EXPECT_TRUE(eager.MaybeAdapt());
  EXPECT_EQ(CounterValue(obs::kAdaptiveKeepMargin), keeps_before + 1);
  EXPECT_EQ(eager.adaptations(), 1);
}

TEST_F(ObsRuntimeTest, SnapshotLifecycleFeedsCountersAndGauges) {
  const uint64_t n = 2048;
  ArraySlot* slot = MakeReadOnlySlot("metered", n);
  const uint64_t acquires_before = CounterValue(obs::kSnapshotAcquires);
  const uint64_t reads_before = CounterValue(obs::kSnapshotReads);
  {
    ArraySnapshot snap = slot->Acquire();
    EXPECT_EQ(obs::GaugeValue(obs::kLiveSnapshots), 1);
    snap.SumRange(0, n);
  }
  EXPECT_EQ(obs::GaugeValue(obs::kLiveSnapshots), 0);
  EXPECT_EQ(CounterValue(obs::kSnapshotAcquires), acquires_before + 1);
  // Reads are batched into the shared counter at Release time.
  EXPECT_EQ(CounterValue(obs::kSnapshotReads), reads_before + n);
}

// The acceptance bar: one adaptation cycle, reconstructed end-to-end from
// the drained trace alone — drain, decision, restructure begin/end with
// per-phase timing, publish with its new sequence, epoch advance + reclaim.
TEST_F(ObsRuntimeTest, FullAdaptationCycleReconstructsFromTrace) {
  const uint64_t n = 10'000;
  ArraySlot* slot = MakeReadOnlySlot("ranks", n);

  // Pass 1 drains the slot's real sample (3 scans = 30k accesses, not thin).
  // The unreachable margin forces a reject decision, so the slot is
  // guaranteed untouched until the crafted-counters accept below.
  DaemonOptions strict;
  strict.min_predicted_win = 1e9;
  AdaptationDaemon observer = MakeDaemon(strict);
  EXPECT_EQ(observer.RunOnce(), 0);

  AdaptationDaemon daemon = MakeDaemon();
  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(slot->bits(), 10u);

  // A few reclaim passes age the retired versions out of the epoch list
  // (each pass advances the epoch by at most one).
  size_t freed = 0;
  for (int i = 0; i < 4; ++i) {
    freed += registry_.Reclaim();
  }
  EXPECT_GE(freed, 1u);

  const std::vector<SaObsTraceEvent> events = DrainAll();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);  // one totally-ordered stream
  }

  auto find_after = [&](size_t from, uint32_t kind,
                        auto&& pred) -> size_t {
    for (size_t i = from; i < events.size(); ++i) {
      if (events[i].kind == kind && pred(events[i])) {
        return i;
      }
    }
    return events.size();
  };
  const auto on_ranks = [](const SaObsTraceEvent& ev) {
    return std::string(ev.slot) == "ranks";
  };

  // 1. The daemon drained a healthy (non-thin) sample from "ranks".
  const size_t drain = find_after(0, obs::kTraceSampleDrain, [&](const SaObsTraceEvent& ev) {
    return on_ranks(ev) && (ev.d & 1) == 0;  // low bit: thin/dropped flag
  });
  ASSERT_LT(drain, events.size());
  EXPECT_EQ(events[drain].a, 3 * n);  // reads
  EXPECT_EQ(events[drain].b, 0u);     // writes
  EXPECT_GT(events[drain].c, 0u);     // interval microseconds

  // 2. An accepted decision from interleaved/64b to replicated/10b.
  const size_t decision =
      find_after(drain, obs::kTraceDecision, [&](const SaObsTraceEvent& ev) {
        return on_ranks(ev) && (ev.c & 0xff) == obs::kDecisionAccepted;
      });
  ASSERT_LT(decision, events.size());
  EXPECT_EQ((events[decision].a >> 16) & 0xff, 64u);             // old bits
  EXPECT_EQ((events[decision].a >> 8) & 0xff,
            static_cast<uint64_t>(smart::Placement::kInterleaved));
  EXPECT_EQ((events[decision].b >> 16) & 0xff, 10u);             // new bits
  EXPECT_EQ((events[decision].b >> 8) & 0xff,
            static_cast<uint64_t>(smart::Placement::kReplicated));
  EXPECT_GT(events[decision].d, 0u);                             // win ppm

  // 3. The rebuild bracketed by begin/end, with per-phase timings.
  const size_t begin = find_after(decision, obs::kTraceRestructureBegin, on_ranks);
  ASSERT_LT(begin, events.size());
  EXPECT_EQ(events[begin].a, events[decision].a);
  EXPECT_EQ(events[begin].b, events[decision].b);
  const size_t end = find_after(begin, obs::kTraceRestructureEnd, on_ranks);
  ASSERT_LT(end, events.size());
  EXPECT_EQ(events[end].d & 1, 1u);                  // success
  EXPECT_GT(events[end].a, 0u);                      // wall ns
  // Per-phase timings are summed across workers, so they can individually
  // exceed the wall time; they just have to exist for a 64 -> 10 repack.
  EXPECT_GT(events[end].b + events[end].c, 0u);

  // 4. The publish that swapped in sequence 2.
  const size_t publish = find_after(end, obs::kTracePublish, [&](const SaObsTraceEvent& ev) {
    return on_ranks(ev) && ev.b == 1;
  });
  ASSERT_LT(publish, events.size());
  EXPECT_EQ(events[publish].a, 2u);

  // Causality: one trace id threads the accepted decision through the
  // restructure bracket and the publish (trace.h packing).
  const uint64_t trace_id = events[decision].c >> 8;
  EXPECT_GT(trace_id, 0u);
  EXPECT_EQ(events[begin].c, trace_id);
  EXPECT_EQ(events[end].d >> 1, trace_id);
  EXPECT_EQ(events[publish].c, trace_id);

  // 5. The epoch advanced and reclaimed the retired version.
  const size_t advance = find_after(publish, obs::kTraceEpochAdvance,
                                    [](const SaObsTraceEvent&) { return true; });
  ASSERT_LT(advance, events.size());
  const size_t reclaim =
      find_after(advance, obs::kTraceEpochReclaim, [](const SaObsTraceEvent& ev) {
        return ev.a >= 1;  // freed at least the old "ranks" version
      });
  ASSERT_LT(reclaim, events.size());

  // The cycle is consistent with the aggregated counters too.
  EXPECT_GE(CounterValue(obs::kDaemonRestructures), 1u);
  EXPECT_GE(CounterValue(obs::kRestructures), 1u);
  EXPECT_GE(CounterValue(obs::kPublishes), 2u);  // initial fill + adaptation
  EXPECT_GE(CounterValue(obs::kEpochReclaimed), 1u);
  EXPECT_GT(obs::HistogramValue(obs::kRestructureWallNs).count, 0u);
}

TEST_F(ObsRuntimeTest, LogLevelGatesFollowSaLogSemantics) {
  log::SetLevelForTesting(log::kOff);
  EXPECT_FALSE(SA_LOG_ENABLED(kError));
  log::SetLevelForTesting(log::kWarn);
  EXPECT_TRUE(SA_LOG_ENABLED(kError));
  EXPECT_TRUE(SA_LOG_ENABLED(kWarn));
  EXPECT_FALSE(SA_LOG_ENABLED(kInfo));
  log::SetLevelForTesting(log::kDebug);
  EXPECT_TRUE(SA_LOG_ENABLED(kDebug));
  // A live Write must not crash or interleave; output goes to stderr.
  SA_LOG(kInfo, "test", "formatted %d %s", 42, "fields");
  log::SetLevelForTesting(log::kOff);
}

}  // namespace
}  // namespace sa::runtime
