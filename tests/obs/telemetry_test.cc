// Sharded telemetry primitives: exact sums under thread fan-out, gauge
// pairing, power-of-two histogram bucketing, the runtime kill switch, and
// monotonicity of aggregate-on-read while writers race (the torture test
// doubles as the TSan witness for the relaxed-atomic shard protocol).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/telemetry.h"

namespace sa::obs {
namespace {

static_assert(kCompiledIn, "obs tests require an SA_OBS build");

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetForTesting();
  }
  void TearDown() override {
    SetEnabled(true);
    ResetForTesting();
  }
};

TEST_F(TelemetryTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        Count(kFfiTransitions, 1);
      }
      Count(kSlotWrites, kPerThread);  // one bulk add per thread
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Relaxed per-shard adds lose nothing: the aggregate is exact.
  EXPECT_EQ(CounterValue(kFfiTransitions), kThreads * kPerThread);
  EXPECT_EQ(CounterValue(kSlotWrites), kThreads * kPerThread);
}

TEST_F(TelemetryTest, GaugePairsCancelAcrossThreads) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 10'000; ++i) {
        GaugeAdd(kLiveSnapshots, 1);
        GaugeAdd(kLiveSnapshots, -1);
      }
      GaugeAdd(kRetiredVersions, 3);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(GaugeValue(kLiveSnapshots), 0);
  EXPECT_EQ(GaugeValue(kRetiredVersions), 3 * kThreads);
}

TEST_F(TelemetryTest, HistogramBucketsSplitAtPowersOfTwo) {
  // Bucket 0 is the value 0; bucket i (1..64) covers [2^(i-1), 2^i).
  EXPECT_EQ(HistogramBucketIndex(0), 0);
  EXPECT_EQ(HistogramBucketIndex(1), 1);
  EXPECT_EQ(HistogramBucketIndex(2), 2);
  EXPECT_EQ(HistogramBucketIndex(3), 2);
  EXPECT_EQ(HistogramBucketIndex(4), 3);
  EXPECT_EQ(HistogramBucketIndex(7), 3);
  EXPECT_EQ(HistogramBucketIndex(8), 4);
  EXPECT_EQ(HistogramBucketIndex((uint64_t{1} << 10) - 1), 10);
  EXPECT_EQ(HistogramBucketIndex(uint64_t{1} << 10), 11);
  EXPECT_EQ(HistogramBucketIndex(~uint64_t{0}), 64);

  Record(kEpochReclaimNs, 0);
  Record(kEpochReclaimNs, 1);
  Record(kEpochReclaimNs, 1023);
  Record(kEpochReclaimNs, 1024);
  Record(kEpochReclaimNs, 1025);
  const HistogramSnapshot snap = HistogramValue(kEpochReclaimNs);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 0u + 1 + 1023 + 1024 + 1025);
  EXPECT_EQ(snap.buckets[0], 1u);   // 0
  EXPECT_EQ(snap.buckets[1], 1u);   // 1
  EXPECT_EQ(snap.buckets[10], 1u);  // 1023 = 2^10 - 1
  EXPECT_EQ(snap.buckets[11], 2u);  // 1024, 1025
}

TEST_F(TelemetryTest, RecordsFromManyThreadsLandInDistinctShards) {
  // Each thread gets its own shard hint; the aggregate still sees them all.
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] { Record(kDaemonPassNs, uint64_t{1} << (t % 8)); });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(HistogramValue(kDaemonPassNs).count, static_cast<uint64_t>(kThreads));
}

TEST_F(TelemetryTest, KillSwitchStopsCountersButNotGauges) {
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  Count(kPublishes, 5);
  Record(kDaemonPassNs, 42);
  EXPECT_EQ(CounterValue(kPublishes), 0u);
  EXPECT_EQ(HistogramValue(kDaemonPassNs).count, 0u);
  // Gauges ignore the runtime switch: +/- pairs must stay balanced even if
  // the switch flips between the two halves.
  GaugeAdd(kLiveSnapshots, 1);
  SetEnabled(true);
  GaugeAdd(kLiveSnapshots, -1);
  EXPECT_EQ(GaugeValue(kLiveSnapshots), 0);
  Count(kPublishes, 2);
  EXPECT_EQ(CounterValue(kPublishes), 2u);
}

TEST_F(TelemetryTest, ExportedNamesArePrometheusLegal) {
  EXPECT_STREQ(CounterName(kSnapshotAcquires), "sa_snapshot_acquires_total");
  EXPECT_STREQ(CounterName(kDaemonSampleDrops), "sa_daemon_sample_drops_total");
  EXPECT_STREQ(CounterName(kFfiTransitions), "sa_ffi_transitions_total");
  EXPECT_STREQ(GaugeName(kLiveSnapshots), "sa_live_snapshots");
  EXPECT_STREQ(HistogramName(kRestructureWallNs), "sa_restructure_wall_ns");
  for (int i = 0; i < kCounterIdCount; ++i) {
    const char* name = CounterName(static_cast<CounterId>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(std::strncmp(name, "sa_", 3), 0) << name;
    const size_t len = std::strlen(name);
    EXPECT_EQ(std::strcmp(name + len - 6, "_total"), 0) << name;
  }
}

// Torture: writers hammer one counter while a reader keeps aggregating.
// Every aggregated value must be monotonic (relaxed loads of the same
// atomics are coherence-ordered), and the final sum exact. Under the TSan
// job this is also the data-race witness for the shard protocol.
TEST_F(TelemetryTest, AggregateIsMonotonicWhileWritersRace) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 200'000;
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t now = CounterValue(kSnapshotReads);
      if (now < last) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      last = now;
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        Count(kSnapshotReads, 1);
        Record(kEpochReclaimNs, i);
        GaugeAdd(kLiveSnapshots, (i & 1) != 0 ? -1 : 1);
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(failed.load()) << "aggregated counter went backwards";
  EXPECT_EQ(CounterValue(kSnapshotReads), kWriters * kPerWriter);
  EXPECT_EQ(HistogramValue(kEpochReclaimNs).count, kWriters * kPerWriter);
}

}  // namespace
}  // namespace sa::obs
