// Column-store substrate: schema handling, operator correctness against
// brute-force references, encodings/placements composition.
#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "table/table.h"

namespace sa::table {
namespace {

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}) {
    Xoshiro256 rng(5);
    quantity_.resize(kRows);
    price_.resize(kRows);
    region_.resize(kRows);
    for (uint64_t i = 0; i < kRows; ++i) {
      quantity_[i] = 1 + rng.Below(50);
      price_[i] = 100 + rng.Below(10'000);
      region_[i] = rng.Below(8);
    }
  }

  Table Build(const smart::PlacementSpec& placement = smart::PlacementSpec::Interleaved()) {
    Table::Builder builder;
    builder.AddColumn("quantity", quantity_)
        .AddColumn("price", price_)
        .AddColumn("region", region_);
    return builder.Build(placement, topo_);
  }

  static constexpr uint64_t kRows = 50'000;
  platform::Topology topo_;
  rts::WorkerPool pool_;
  std::vector<uint64_t> quantity_;
  std::vector<uint64_t> price_;
  std::vector<uint64_t> region_;
};

TEST_F(TableTest, SchemaBasics) {
  const Table t = Build();
  EXPECT_EQ(t.num_rows(), kRows);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.column("price").length(), kRows);
  EXPECT_GT(t.footprint_bytes(), 0u);
  // Columns are compressed: far below 3 x 8 bytes/row.
  EXPECT_LT(t.footprint_bytes(), kRows * 24 / 2);
}

TEST_F(TableTest, CountWhereMatchesBruteForce) {
  const Table t = Build();
  const std::vector<Predicate> predicates = {
      {"region", Predicate::Op::kEq, 3, 0},
      {"quantity", Predicate::Op::kGe, 25, 0},
  };
  uint64_t want = 0;
  for (uint64_t i = 0; i < kRows; ++i) {
    want += region_[i] == 3 && quantity_[i] >= 25;
  }
  EXPECT_EQ(CountWhere(pool_, t, predicates), want);
}

TEST_F(TableTest, SumWhereMatchesBruteForce) {
  const Table t = Build();
  const std::vector<Predicate> predicates = {
      {"price", Predicate::Op::kBetween, 1000, 5000},
  };
  uint64_t want = 0;
  for (uint64_t i = 0; i < kRows; ++i) {
    if (price_[i] >= 1000 && price_[i] <= 5000) {
      want += quantity_[i];
    }
  }
  EXPECT_EQ(SumWhere(pool_, t, "quantity", predicates), want);
}

TEST_F(TableTest, EmptyPredicateListSelectsEverything) {
  const Table t = Build();
  EXPECT_EQ(CountWhere(pool_, t, {}), kRows);
  uint64_t want = 0;
  for (const uint64_t q : quantity_) {
    want += q;
  }
  EXPECT_EQ(SumWhere(pool_, t, "quantity", {}), want);
}

TEST_F(TableTest, AllPredicateOpsBehave) {
  const Table t = Build();
  auto count = [&](Predicate::Op op, uint64_t v, uint64_t v2 = 0) {
    return CountWhere(pool_, t, {{"region", op, v, v2}});
  };
  std::map<uint64_t, uint64_t> histogram;
  for (const uint64_t r : region_) {
    ++histogram[r];
  }
  EXPECT_EQ(count(Predicate::Op::kEq, 2), histogram[2]);
  EXPECT_EQ(count(Predicate::Op::kNe, 2), kRows - histogram[2]);
  EXPECT_EQ(count(Predicate::Op::kLt, 2), histogram[0] + histogram[1]);
  EXPECT_EQ(count(Predicate::Op::kLe, 1), histogram[0] + histogram[1]);
  EXPECT_EQ(count(Predicate::Op::kGt, 5), histogram[6] + histogram[7]);
  EXPECT_EQ(count(Predicate::Op::kGe, 6), histogram[6] + histogram[7]);
  EXPECT_EQ(count(Predicate::Op::kBetween, 2, 4),
            histogram[2] + histogram[3] + histogram[4]);
}

TEST_F(TableTest, GroupBySumMatchesBruteForce) {
  const Table t = Build();
  std::map<uint64_t, uint64_t> want;
  for (uint64_t i = 0; i < kRows; ++i) {
    want[region_[i]] += price_[i];
  }
  const auto got = GroupBySum(pool_, t, "region", "price");
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, sum] : got) {
    EXPECT_EQ(sum, want[key]) << "region " << key;
  }
  // Sorted by key.
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1].first, got[i].first);
  }
}

TEST_F(TableTest, MinMaxMatchesBruteForce) {
  const Table t = Build();
  const auto mm = MinMaxOf(pool_, t, "price");
  EXPECT_EQ(mm.min, *std::min_element(price_.begin(), price_.end()));
  EXPECT_EQ(mm.max, *std::max_element(price_.begin(), price_.end()));
}

TEST_F(TableTest, ForcedEncodingsStillAnswerCorrectly) {
  Table::Builder builder;
  builder.AddColumn("quantity", quantity_, encodings::Encoding::kFrameOfReference)
      .AddColumn("price", price_, encodings::Encoding::kBitPacked)
      .AddColumn("region", region_, encodings::Encoding::kDictionary);
  const Table t = builder.Build(smart::PlacementSpec::Replicated(), topo_);
  EXPECT_EQ(t.column("region").encoding(), encodings::Encoding::kDictionary);
  uint64_t want = 0;
  for (uint64_t i = 0; i < kRows; ++i) {
    if (region_[i] == 1) {
      want += price_[i];
    }
  }
  EXPECT_EQ(SumWhere(pool_, t, "price", {{"region", Predicate::Op::kEq, 1, 0}}), want);
}

TEST_F(TableTest, BuilderRejectsSchemaErrors) {
  Table::Builder builder;
  builder.AddColumn("a", {1, 2, 3});
  EXPECT_DEATH(builder.AddColumn("a", {4, 5, 6}), "duplicate");
  EXPECT_DEATH(builder.AddColumn("b", {1, 2}), "row count");
  const Table t = Build();
  EXPECT_DEATH(t.column("nope"), "unknown column");
}

}  // namespace
}  // namespace sa::table
