// Sharded ArrayRegistry control plane: by-name acquire semantics on the
// lock-free shard tables, per-shard epoch independence, pin-exhaustion
// admission control, sampled counter flushing, and a many-shard
// acquire/publish/create torture loop (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "runtime/registry.h"
#include "smart/smart_array.h"

namespace sa::runtime {
namespace {

std::string SlotName(int i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "tenant-%04d/ds-%02d/array-%06d", i % 7, i % 3, i);
  return std::string(buf);
}

std::unique_ptr<smart::SmartArray> BuildConstant(const platform::Topology& topo,
                                                 uint64_t length, uint64_t value,
                                                 uint32_t bits) {
  auto storage =
      smart::SmartArray::Allocate(length, smart::PlacementSpec::Interleaved(), bits, topo);
  for (uint64_t i = 0; i < length; ++i) {
    storage->Init(i, value);
  }
  return storage;
}

TEST(ShardedRegistryTest, AcquireByNameFindsSlotsAcrossShards) {
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  ArrayRegistry::Options options;
  options.num_shards = 8;
  ArrayRegistry registry(topo, options);
  constexpr int kSlots = 200;  // enough to populate every shard
  for (int i = 0; i < kSlots; ++i) {
    ArraySlot* slot =
        registry.Create(SlotName(i), 32, smart::PlacementSpec::Interleaved(), 16);
    slot->Write(0, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(registry.size(), static_cast<size_t>(kSlots));
  EXPECT_EQ(registry.num_shards(), 8);
  for (int i = 0; i < kSlots; ++i) {
    ArraySnapshot snap = registry.AcquireByName(SlotName(i));
    ASSERT_TRUE(snap.valid()) << SlotName(i);
    EXPECT_EQ(snap.Get(0), static_cast<uint64_t>(i));
  }
  EXPECT_FALSE(registry.AcquireByName("tenant-0000/ds-00/array-999999").valid());
  EXPECT_FALSE(registry.AcquireByName("").valid());
}

TEST(ShardedRegistryTest, AcquireByNameAgreesWithOpenTryAcquire) {
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  ArrayRegistry::Options options;
  options.num_shards = 4;
  ArrayRegistry registry(topo, options);
  for (int i = 0; i < 64; ++i) {
    ArraySlot* slot =
        registry.Create(SlotName(i), 16, smart::PlacementSpec::Interleaved(), 16);
    slot->Write(3, static_cast<uint64_t>(100 + i));
  }
  for (int i = 0; i < 64; ++i) {
    ArraySlot* slot = registry.Open(SlotName(i));
    ASSERT_NE(slot, nullptr);
    ArraySnapshot via_map = slot->TryAcquire();
    ArraySnapshot via_table = registry.AcquireByName(SlotName(i));
    ASSERT_TRUE(via_map.valid());
    ASSERT_TRUE(via_table.valid());
    EXPECT_EQ(via_map.Get(3), via_table.Get(3));
    EXPECT_EQ(via_map.sequence(), via_table.sequence());
  }
}

TEST(ShardedRegistryTest, PinExhaustionSurfacesAsInvalidSnapshot) {
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  ArrayRegistry::Options options;
  options.num_shards = 1;  // one shard -> one 2-pin domain
  options.pin_slots_per_shard = 2;
  ArrayRegistry registry(topo, options);
  registry.Create("only", 16, smart::PlacementSpec::Interleaved(), 16);

  ArraySnapshot a = registry.AcquireByName("only");
  ArraySnapshot b = registry.AcquireByName("only");
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  // Domain full: admission control rejects instead of blocking/aborting.
  EXPECT_FALSE(registry.AcquireByName("only").valid());
  EXPECT_FALSE(registry.Open("only")->TryAcquire().valid());
  b.Release();
  ArraySnapshot c = registry.AcquireByName("only");
  EXPECT_TRUE(c.valid());
}

TEST(ShardedRegistryTest, ShardEpochDomainsAdvanceIndependently) {
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  ArrayRegistry::Options options;
  options.num_shards = 4;
  ArrayRegistry registry(topo, options);
  // Find two slots living on different shards.
  ArraySlot* first =
      registry.Create(SlotName(0), 32, smart::PlacementSpec::Interleaved(), 16);
  ArraySlot* second = nullptr;
  for (int i = 1; second == nullptr; ++i) {
    ArraySlot* slot =
        registry.Create(SlotName(i), 32, smart::PlacementSpec::Interleaved(), 16);
    if (&slot->epoch() != &first->epoch()) {
      second = slot;
    }
  }
  // A reader parked on `first`'s shard must not block reclaiming a version
  // retired on `second`'s shard: the domains are independent.
  ArraySnapshot parked = first->TryAcquire();
  ASSERT_TRUE(parked.valid());
  ASSERT_TRUE(registry.Publish(*second, BuildConstant(topo, 32, 7, 16),
                               second->write_count()));
  size_t reclaimed = 0;
  for (int i = 0; i < 5 && reclaimed == 0; ++i) {
    reclaimed += registry.Reclaim();
  }
  EXPECT_EQ(reclaimed, 1u);  // the old version of `second`, pins and all
}

TEST(ShardedRegistryTest, SampledCounterFlushStillFeedsSamples) {
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  ArrayRegistry::Options options;
  options.counter_flush_sample_shift = 3;  // flush every 8th release
  ArrayRegistry registry(topo, options);
  ArraySlot* slot = registry.Create("s", 64, smart::PlacementSpec::Interleaved(), 16);
  constexpr int kAcquires = 256;  // far more than the sampling period
  for (int i = 0; i < kAcquires; ++i) {
    ArraySnapshot snap = registry.AcquireByName("s");
    ASSERT_TRUE(snap.valid());
    snap.SumRange(0, 64);
  }
  const SlotSample sample = slot->DrainSample();
  // Counts are sampled (every 8th flush, scaled by 8): exactness is not
  // guaranteed, but the expectation is — with one thread the per-thread
  // tick makes it deterministic: 256/8 flushes of 8x-scaled counts.
  EXPECT_EQ(sample.pins, static_cast<uint64_t>(kAcquires));
  EXPECT_EQ(sample.sequential_reads, static_cast<uint64_t>(kAcquires) * 64);
}

TEST(ShardedRegistryTest, ManyShardAcquirePublishCreateTorture) {
  // Readers resolve by name through the lock-free tables while a writer
  // republishes storage and a creator grows shard tables (forcing table
  // rebuilds concurrent with probes). Correctness bar: every valid
  // snapshot reads a constant array (no torn version), and the registry
  // stays consistent. Run under TSan in the service-smoke CI job.
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  ArrayRegistry::Options options;
  options.num_shards = 16;
  ArrayRegistry registry(topo, options);
  constexpr int kBaseSlots = 64;
  constexpr uint64_t kLength = 32;
  for (int i = 0; i < kBaseSlots; ++i) {
    ArraySlot* slot =
        registry.Create(SlotName(i), kLength, smart::PlacementSpec::Interleaved(), 16);
    ASSERT_TRUE(
        registry.Publish(*slot, BuildConstant(topo, kLength, 1, 16), slot->write_count()));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&registry, &stop, &torn, t] {
      uint64_t i = static_cast<uint64_t>(t) * 17;
      while (!stop.load(std::memory_order_relaxed)) {
        ArraySnapshot snap =
            registry.AcquireByName(SlotName(static_cast<int>(i++ % kBaseSlots)));
        if (!snap.valid()) {
          continue;
        }
        // A constant array sums to first-element * length in every
        // published version; anything else is a torn read.
        const uint64_t first = snap.Get(0);
        if (snap.SumRange(0, kLength) != first * kLength) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread publisher([&registry, &topo, &stop] {
    uint64_t value = 2;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kBaseSlots; i += 3) {
        ArraySlot* slot = registry.Open(SlotName(i));
        (void)registry.Publish(*slot, BuildConstant(topo, kLength, value % 1000, 16),
                               slot->write_count());
      }
      registry.Reclaim();
      ++value;
    }
  });
  std::thread creator([&registry, &stop] {
    // Push every shard's table through at least one 4x rebuild while the
    // readers keep probing the old tables under their shard pins.
    for (int i = kBaseSlots; i < kBaseSlots + 512 && !stop.load(std::memory_order_relaxed);
         ++i) {
      registry.Create(SlotName(i), kLength, smart::PlacementSpec::Interleaved(), 16);
    }
  });
  creator.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) {
    t.join();
  }
  publisher.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(registry.size(), static_cast<size_t>(kBaseSlots + 512));
  for (int i = 0; i < registry.num_shards(); ++i) {
    registry.ReclaimShard(i);
  }
}

}  // namespace
}  // namespace sa::runtime
