// The decision audit + calibration loop (runtime/audit.h): every selector
// run lands a DecisionRecord in the slot's ring, accepted decisions are
// scored realized-vs-predicted on the next drain, a planted estimator
// misprediction surfaces as nonzero calibration error, and the flap
// detector holds an oscillating slot down. All of it is runtime state — the
// tests run identically with SA_OBS compiled out.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "adapt/decision_record.h"
#include "runtime/audit.h"
#include "runtime/daemon.h"
#include "runtime/entry_points.h"
#include "runtime/registry.h"
#include "sim/cost_model.h"
#include "sim/machine_spec.h"

namespace sa::runtime {
namespace {

// §5.1 memory-bound streaming shape (same as daemon_test.cc): the selector
// deterministically picks replicated + compressed for a read-only slot.
adapt::WorkloadCounters MemBoundStreamingCounters(const adapt::MachineCaps& caps) {
  adapt::WorkloadCounters c;
  c.exec_current_per_socket = caps.exec_max_per_socket * 0.2;
  c.bw_current_memory = std::min(caps.bw_max_memory, 2 * caps.bw_max_interconnect) * 0.95;
  c.max_mem_utilization = 0.95;
  c.max_ic_utilization = 0.92;
  c.accesses_per_second = c.bw_current_memory * 2 / 8.0;
  c.elem_bytes = 8.0;
  c.dataset_bytes = 1e9;
  return c;
}

// CPU-bound shape: not memory bound, so Fig. 13 falls through to the
// uncompressed interleaved default — the profiling configuration itself.
adapt::WorkloadCounters CpuBoundCounters(const adapt::MachineCaps& caps) {
  adapt::WorkloadCounters c = MemBoundStreamingCounters(caps);
  c.max_mem_utilization = 0.2;
  c.max_ic_utilization = 0.2;
  return c;
}

class AuditTest : public ::testing::Test {
 protected:
  AuditTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}),
        registry_(topo_),
        machine_(adapt::MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core())),
        costs_(adapt::ArrayCosts::FromCostModel(sim::CostModel::Default())) {}

  AdaptationDaemon MakeDaemon(DaemonOptions options = {}) {
    return AdaptationDaemon(registry_, pool_, machine_, costs_, options);
  }

  ArraySlot* MakeReadOnlySlot(const std::string& name, uint64_t n) {
    ArraySlot* slot = registry_.Create(name, n, smart::PlacementSpec::Interleaved(), 64);
    auto storage =
        smart::SmartArray::Allocate(n, smart::PlacementSpec::Interleaved(), 64, topo_);
    for (uint64_t i = 0; i < n; ++i) {
      storage->Init(i, i % 1024);
    }
    EXPECT_TRUE(registry_.Publish(*slot, std::move(storage), 0));
    Scan(*slot, 3);
    return slot;
  }

  static void Scan(ArraySlot& slot, int passes) {
    for (int pass = 0; pass < passes; ++pass) {
      ArraySnapshot snap = slot.Acquire();
      snap.SumRange(0, snap.length());
    }
  }

  // Newest-first copy of the slot's audit ring.
  static std::vector<adapt::DecisionRecord> Ring(ArraySlot& slot) {
    SlotAuditState* audit = slot.audit();
    if (audit == nullptr) {
      return {};
    }
    std::vector<adapt::DecisionRecord> out(SlotAuditState::kRingSize);
    std::lock_guard<std::mutex> lock(audit->mu);
    out.resize(audit->Copy(out.data(), SlotAuditState::kRingSize));
    return out;
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
  ArrayRegistry registry_;
  adapt::MachineCaps machine_;
  adapt::ArrayCosts costs_;
};

TEST_F(AuditTest, AcceptedDecisionLandsInRingAndMatchesLiveConfig) {
  ArraySlot* slot = MakeReadOnlySlot("audited", 8192);
  AdaptationDaemon daemon = MakeDaemon();
  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));

  const std::vector<adapt::DecisionRecord> ring = Ring(*slot);
  ASSERT_EQ(ring.size(), 1u);
  const adapt::DecisionRecord& rec = ring[0];
  EXPECT_EQ(rec.reason, adapt::DecisionReason::kAccepted);
  EXPECT_GT(rec.trace_id, 0u);
  EXPECT_GT(rec.ns, 0u);
  EXPECT_TRUE(rec.published);
  EXPECT_EQ(rec.published_sequence, slot->sequence());

  // The chosen configuration in the record is the configuration the slot
  // actually runs now.
  EXPECT_EQ(rec.chosen.placement.kind, slot->placement().kind);
  EXPECT_EQ(rec.chosen_bits, slot->bits());
  EXPECT_TRUE(rec.chosen.compressed);

  // Every candidate the selector weighed is recorded with its estimate:
  // Fig. 13a uncompressed, Fig. 13b compressed, plus the incumbent.
  ASSERT_EQ(rec.num_candidates, 3);
  EXPECT_STREQ(rec.candidates[0].role, "uncompressed");
  EXPECT_STREQ(rec.candidates[1].role, "compressed");
  EXPECT_STREQ(rec.candidates[2].role, "current");
  for (int i = 0; i < rec.num_candidates; ++i) {
    EXPECT_GT(rec.candidates[i].estimated_speedup, 0.0) << i;
  }

  // Margin math: the accept means chosen cleared current by the margin.
  EXPECT_GT(rec.chosen_speedup, rec.current_speedup * (1.0 + rec.margin));
  EXPECT_GT(rec.predicted_win, rec.margin);

  // Inputs snapshot is the counters the decision reasoned about.
  EXPECT_DOUBLE_EQ(rec.inputs.counters.max_mem_utilization, 0.95);
  EXPECT_TRUE(rec.inputs.hints.read_only);
}

TEST_F(AuditTest, RejectedDecisionsAreRecordedToo) {
  ArraySlot* slot = MakeReadOnlySlot("rejected", 8192);
  AdaptationDaemon daemon = MakeDaemon();

  // Same-config keep: CPU-bound counters re-choose the incumbent.
  EXPECT_FALSE(daemon.AdaptSlot(*slot, CpuBoundCounters(machine_)));
  // Margin keep: an unreachable margin turns the accept into a reject.
  DaemonOptions strict;
  strict.min_predicted_win = 100.0;
  AdaptationDaemon cautious = MakeDaemon(strict);
  EXPECT_FALSE(cautious.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));

  const std::vector<adapt::DecisionRecord> ring = Ring(*slot);
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].reason, adapt::DecisionReason::kRejectMargin);
  EXPECT_FALSE(ring[0].published);
  EXPECT_DOUBLE_EQ(ring[0].margin, 100.0);
  EXPECT_LT(ring[0].predicted_win, 100.0);
  EXPECT_EQ(ring[1].reason, adapt::DecisionReason::kRejectSameConfig);
  EXPECT_EQ(slot->sequence(), 1u);  // nothing restructured
}

// The tentpole loop closed: an accepted decision is scored against the
// post-restructure access rate on the daemon's next drain, and a planted
// estimator misprediction (estimator_bias) shows up as calibration error.
TEST_F(AuditTest, PlantedMispredictionSurfacesNonzeroCalibrationError) {
  ArraySlot* slot = MakeReadOnlySlot("biased", 8192);

  DaemonOptions options;
  options.estimator_bias = 8.0;  // the estimator now overpredicts 8x
  AdaptationDaemon daemon = MakeDaemon(options);

  // Drain 1 (real sample from the 3 setup scans): warms the rate EWMA the
  // score will use as its pre-restructure baseline.
  daemon.RunOnce();
  {
    SlotAuditState* audit = slot->audit();
    ASSERT_NE(audit, nullptr);
    std::lock_guard<std::mutex> lock(audit->mu);
    EXPECT_TRUE(audit->has_rate);
    EXPECT_GT(audit->rate_ewma, 0.0);
  }

  // Accept under the biased estimator: arms the pending score.
  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));

  // Drain 2 settles the score against the realized rate.
  Scan(*slot, 3);
  ASSERT_EQ(daemon.RunOnce(), 0);  // scores; no new restructure

  const std::vector<adapt::DecisionRecord> ring = Ring(*slot);
  const auto scored = std::find_if(ring.begin(), ring.end(),
                                   [](const adapt::DecisionRecord& r) { return r.scored; });
  ASSERT_NE(scored, ring.end());
  EXPECT_TRUE(scored->published);
  EXPECT_GT(scored->pre_rate, 0.0);
  EXPECT_GT(scored->post_rate, 0.0);
  EXPECT_GT(scored->realized_ratio, 0.0);
  // predicted_ratio carries the planted 8x bias on top of the honest ~2x
  // estimate. realized_ratio is a wall-clock rate ratio, so its magnitude is
  // scheduling noise (it can land on either side of the prediction) — the
  // robust claims are that the bias reached the prediction and that the
  // score surfaced a nonzero mismatch.
  EXPECT_GT(scored->predicted_ratio, 4.0);
  EXPECT_GT(scored->calibration_error, 0.0);
}

TEST_F(AuditTest, FlapDetectorHoldsOscillatingSlot) {
  ArraySlot* slot = MakeReadOnlySlot("flappy", 8192);

  DaemonOptions options;
  options.min_predicted_win = -1.0;  // accept any configuration change
  AdaptationDaemon daemon = MakeDaemon(options);

  // A -> B: the memory-bound profile moves the slot off the profiling
  // configuration.
  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  const uint64_t sequence_after_accept = slot->sequence();
  const uint32_t bits_after_accept = slot->bits();
  ASSERT_LT(bits_after_accept, 64u);

  // B -> A would complete the oscillation: the CPU-bound profile chooses
  // exactly the configuration the slot just moved away from, inside the
  // flap window — held down instead of accepted.
  EXPECT_FALSE(daemon.AdaptSlot(*slot, CpuBoundCounters(machine_)));
  {
    const std::vector<adapt::DecisionRecord> ring = Ring(*slot);
    ASSERT_GE(ring.size(), 2u);
    EXPECT_EQ(ring[0].reason, adapt::DecisionReason::kFlapHold);
    EXPECT_FALSE(ring[0].published);
  }
  SlotAuditState* audit = slot->audit();
  ASSERT_NE(audit, nullptr);
  {
    std::lock_guard<std::mutex> lock(audit->mu);
    EXPECT_EQ(audit->hold_remaining, DaemonOptions{}.flap_hold_decisions);
  }

  // The hold-down persists across further would-flip decisions, counting
  // down one per refused decision; the slot's storage never moves.
  for (int i = 1; i <= 3; ++i) {
    EXPECT_FALSE(daemon.AdaptSlot(*slot, CpuBoundCounters(machine_)));
    std::lock_guard<std::mutex> lock(audit->mu);
    EXPECT_EQ(audit->hold_remaining, DaemonOptions{}.flap_hold_decisions - i);
  }
  EXPECT_EQ(slot->sequence(), sequence_after_accept);
  EXPECT_EQ(slot->bits(), bits_after_accept);

  // Re-choosing the incumbent is a same-config keep, not a flap.
  EXPECT_FALSE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(Ring(*slot)[0].reason, adapt::DecisionReason::kRejectSameConfig);
}

TEST_F(AuditTest, FlapDetectionDisabledByZeroWindow) {
  ArraySlot* slot = MakeReadOnlySlot("noflap", 8192);
  DaemonOptions options;
  options.min_predicted_win = -1.0;
  options.flap_window = 0;
  AdaptationDaemon daemon = MakeDaemon(options);
  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  // Without the detector the oscillation is accepted freely.
  EXPECT_TRUE(daemon.AdaptSlot(*slot, CpuBoundCounters(machine_)));
  EXPECT_EQ(slot->bits(), 64u);
}

TEST_F(AuditTest, AuditOffRecordsNothing) {
  ArraySlot* slot = MakeReadOnlySlot("unaudited", 8192);
  DaemonOptions options;
  options.audit = false;
  AdaptationDaemon daemon = MakeDaemon(options);
  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(slot->audit(), nullptr);
  EXPECT_EQ(saSlotExplain(slot, nullptr, 0), 0u);
}

// The C-ABI view: newest first, ring-bounded, configs in the shared packed
// encoding, total decision count beyond the ring preserved.
TEST_F(AuditTest, ExplainAbiExposesRingNewestFirst) {
  ArraySlot* slot = MakeReadOnlySlot("explained", 8192);
  AdaptationDaemon daemon = MakeDaemon();
  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  // Overflow the ring with same-config keeps.
  for (int i = 0; i < SlotAuditState::kRingSize + 2; ++i) {
    EXPECT_FALSE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  }

  SaSlotDecision decisions[SA_EXPLAIN_MAX_DECISIONS];
  const uint64_t total = saSlotExplain(slot, decisions, SA_EXPLAIN_MAX_DECISIONS);
  EXPECT_EQ(total, static_cast<uint64_t>(SlotAuditState::kRingSize) + 3);
  for (int i = 1; i < SA_EXPLAIN_MAX_DECISIONS; ++i) {
    EXPECT_GT(decisions[i - 1].trace_id, decisions[i].trace_id);  // newest first
  }
  // The accept itself has been overwritten; what remains are keeps whose
  // packed current config matches the live storage.
  const SaSlotDecision& newest = decisions[0];
  EXPECT_EQ(newest.reason, 1u);  // reject-same-config
  EXPECT_EQ((newest.packed_current >> 16) & 0xff, slot->bits());
  EXPECT_EQ((newest.packed_current >> 8) & 0xff,
            static_cast<uint64_t>(slot->placement().kind));
  EXPECT_EQ(newest.num_candidates, 3u);
  EXPECT_GT(newest.in_accesses_per_second, 0.0);

  // A cap smaller than the ring still reports the full total.
  SaSlotDecision two[2];
  EXPECT_EQ(saSlotExplain(slot, two, 2), total);
  EXPECT_EQ(two[0].trace_id, decisions[0].trace_id);
  EXPECT_EQ(two[1].trace_id, decisions[1].trace_id);

  // The accepted decision was evicted from the ring above, but the slot's
  // eviction-proof copy still answers "which decision produced the live
  // configuration" — and matches what the storage actually looks like.
  SaSlotDecision published;
  ASSERT_EQ(saSlotExplainPublished(slot, &published), 1u);
  EXPECT_NE(published.published, 0u);
  EXPECT_EQ((published.packed_chosen >> 16) & 0xff, slot->bits());
  EXPECT_EQ((published.packed_chosen >> 8) & 0xff,
            static_cast<uint64_t>(slot->placement().kind));
  for (int i = 0; i < SA_EXPLAIN_MAX_DECISIONS; ++i) {
    EXPECT_NE(decisions[i].trace_id, published.trace_id);  // truly evicted
  }
}

TEST_F(AuditTest, ExplainPublishedIsZeroWithoutAnyPublish) {
  ArraySlot* slot = MakeReadOnlySlot("never-published", 8192);
  EXPECT_EQ(saSlotExplainPublished(slot, nullptr), 0u);  // no audit state yet
  AdaptationDaemon daemon = MakeDaemon();
  // Not memory-bound: the selector keeps the current configuration.
  EXPECT_FALSE(daemon.AdaptSlot(*slot, CpuBoundCounters(machine_)));
  EXPECT_GT(saSlotExplain(slot, nullptr, 0), 0u);        // decision recorded
  EXPECT_EQ(saSlotExplainPublished(slot, nullptr), 0u);  // but none published
}

}  // namespace
}  // namespace sa::runtime
