// EpochManager: retired objects are freed only after every pin taken before
// the retirement has been released (the safety property the whole runtime
// leans on), and the pin/unpin fast path survives concurrent hammering.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/epoch.h"

namespace sa::runtime {
namespace {

TEST(EpochManagerTest, StartsCleanAtEpochOne) {
  EpochManager epoch;
  EXPECT_EQ(epoch.epoch(), 1u);
  EXPECT_EQ(epoch.pinned_count(), 0);
  EXPECT_EQ(epoch.retired_count(), 0u);
}

TEST(EpochManagerTest, PinUnpinRoundTrip) {
  EpochManager epoch;
  const EpochManager::PinHandle a = epoch.Pin();
  const EpochManager::PinHandle b = epoch.Pin();  // nested pins are fine
  EXPECT_EQ(epoch.pinned_count(), 2);
  epoch.Unpin(b);
  epoch.Unpin(a);
  EXPECT_EQ(epoch.pinned_count(), 0);
}

TEST(EpochManagerTest, QuiescentRetireNeedsTwoAdvances) {
  EpochManager epoch;
  bool freed = false;
  epoch.Retire([&freed] { freed = true; });  // retired at epoch 1, free at 3
  EXPECT_EQ(epoch.TryReclaim(), 0u);         // advances 1 -> 2
  EXPECT_FALSE(freed);
  EXPECT_EQ(epoch.TryReclaim(), 1u);  // advances 2 -> 3, frees
  EXPECT_TRUE(freed);
  EXPECT_EQ(epoch.retired_count(), 0u);
}

TEST(EpochManagerTest, PinnedReaderBlocksReclamationUntilUnpin) {
  EpochManager epoch;
  const EpochManager::PinHandle pin = epoch.Pin();  // pinned at epoch 1
  std::atomic<int> freed{0};
  epoch.Retire([&freed] { ++freed; });

  // The first call may advance once (the reader is pinned at the current
  // epoch), after which the stale pin blocks any further advance — the
  // deleter can never become eligible while the pin is held.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(epoch.TryReclaim(), 0u);
  }
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(epoch.retired_count(), 1u);

  epoch.Unpin(pin);
  size_t reclaimed = 0;
  for (int i = 0; i < 3 && reclaimed == 0; ++i) {
    reclaimed += epoch.TryReclaim();
  }
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochManagerTest, ReaderPinnedAfterRetireDoesNotBlockThatGarbage) {
  EpochManager epoch;
  bool freed = false;
  epoch.Retire([&freed] { freed = true; });   // retired at epoch 1
  EXPECT_EQ(epoch.TryReclaim(), 0u);          // now at epoch 2
  const EpochManager::PinHandle pin = epoch.Pin();  // pinned at 2: saw the swap
  EXPECT_EQ(epoch.TryReclaim(), 1u);          // advance to 3 is legal, frees
  EXPECT_TRUE(freed);
  epoch.Unpin(pin);
}

TEST(EpochManagerTest, TryPinFailsGracefullyWhenSlotsExhausted) {
  EpochManager epoch(4);
  std::vector<EpochManager::PinHandle> held;
  for (int i = 0; i < 4; ++i) {
    const EpochManager::PinHandle pin = epoch.TryPin();
    ASSERT_TRUE(pin.valid());
    held.push_back(pin);
  }
  // Every slot is claimed: further TryPin must return an invalid handle
  // (admission control), never block or abort.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(epoch.TryPin().valid());
  }
  // Releasing one slot makes exactly one new pin admissible again.
  epoch.Unpin(held.back());
  held.pop_back();
  const EpochManager::PinHandle regained = epoch.TryPin();
  EXPECT_TRUE(regained.valid());
  EXPECT_FALSE(epoch.TryPin().valid());
  epoch.Unpin(regained);
  for (const EpochManager::PinHandle pin : held) {
    epoch.Unpin(pin);
  }
  EXPECT_EQ(epoch.pinned_count(), 0);
}

TEST(EpochManagerTest, MoreThreadsThanSlotsSomeRejectedAllRecover) {
  // 16 threads hammer a 8-slot domain while holding pins briefly: rejects
  // must surface as invalid handles (counted, never fatal), and once the
  // threads drain the domain must be fully reusable.
  EpochManager epoch(8);
  constexpr int kThreads = 16;
  constexpr int kItersPerThread = 5'000;
  std::atomic<bool> go{false};
  std::atomic<uint64_t> granted{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kItersPerThread; ++i) {
        const EpochManager::PinHandle pin = epoch.TryPin();
        if (!pin.valid()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        granted.fetch_add(1, std::memory_order_relaxed);
        epoch.Unpin(pin);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_GT(granted.load(), 0u);
  EXPECT_EQ(epoch.pinned_count(), 0);
  // The domain still works at full capacity after the storm.
  std::vector<EpochManager::PinHandle> held;
  for (int i = 0; i < 8; ++i) {
    const EpochManager::PinHandle pin = epoch.TryPin();
    ASSERT_TRUE(pin.valid());
    held.push_back(pin);
  }
  for (const EpochManager::PinHandle pin : held) {
    epoch.Unpin(pin);
  }
}

TEST(EpochManagerTest, DestructorRunsOutstandingDeleters) {
  std::atomic<int> freed{0};
  {
    EpochManager epoch;
    epoch.Retire([&freed] { ++freed; });
    epoch.Retire([&freed] { ++freed; });
  }
  EXPECT_EQ(freed.load(), 2);
}

TEST(EpochManagerTest, ConcurrentPinUnpinWithRetiresStress) {
  EpochManager epoch;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 20'000;
  constexpr int kRetires = 200;

  std::atomic<bool> go{false};
  std::atomic<int> freed{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&epoch, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kItersPerThread; ++i) {
        const EpochManager::PinHandle pin = epoch.Pin();
        epoch.Unpin(pin);
      }
    });
  }
  go.store(true, std::memory_order_release);

  for (int r = 0; r < kRetires; ++r) {
    epoch.Retire([&freed] { freed.fetch_add(1, std::memory_order_relaxed); });
    epoch.TryReclaim();
  }
  for (std::thread& t : readers) {
    t.join();
  }
  // All readers are gone; a few passes drain whatever is left.
  for (int i = 0; i < 5 && epoch.retired_count() != 0; ++i) {
    epoch.TryReclaim();
  }
  EXPECT_EQ(epoch.pinned_count(), 0);
  EXPECT_EQ(epoch.retired_count(), 0u);
  EXPECT_EQ(freed.load(), kRetires);
}

}  // namespace
}  // namespace sa::runtime
