// AdaptationDaemon: deterministic decision/rebuild/publish via AdaptSlot
// with crafted §6 counters, counter synthesis from interval samples, hint
// derivation, and the background-thread plumbing.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/telemetry.h"
#include "runtime/daemon.h"
#include "sim/machine_spec.h"

namespace sa::runtime {
namespace {

// The §5.1 memory-bound streaming shape (same as the AdaptiveArray tests):
// read-only scans saturating memory and interconnect with compute headroom.
adapt::WorkloadCounters MemBoundStreamingCounters(const adapt::MachineCaps& caps) {
  adapt::WorkloadCounters c;
  c.exec_current_per_socket = caps.exec_max_per_socket * 0.2;
  c.bw_current_memory = std::min(caps.bw_max_memory, 2 * caps.bw_max_interconnect) * 0.95;
  c.max_mem_utilization = 0.95;
  c.max_ic_utilization = 0.92;
  c.accesses_per_second = c.bw_current_memory * 2 / 8.0;
  c.elem_bytes = 8.0;
  c.dataset_bytes = 1e9;
  return c;
}

class AdaptationDaemonTest : public ::testing::Test {
 protected:
  AdaptationDaemonTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}),
        registry_(topo_),
        machine_(adapt::MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core())),
        costs_(adapt::ArrayCosts::FromCostModel(sim::CostModel::Default())) {}

  AdaptationDaemon MakeDaemon(DaemonOptions options = {}) {
    return AdaptationDaemon(registry_, pool_, machine_, costs_, options);
  }

  // A slot in the profiling shape (interleaved, uncompressed) holding 10-bit
  // values, with a read-only lifetime profile of several linear passes —
  // exactly the §5.1 candidate for replicated + compressed.
  ArraySlot* MakeReadOnlySlot(const std::string& name, uint64_t n) {
    ArraySlot* slot = registry_.Create(name, n, smart::PlacementSpec::Interleaved(), 64);
    auto storage =
        smart::SmartArray::Allocate(n, smart::PlacementSpec::Interleaved(), 64, topo_);
    for (uint64_t i = 0; i < n; ++i) {
      storage->Init(i, i % 1024);
    }
    EXPECT_TRUE(registry_.Publish(*slot, std::move(storage), 0));
    for (int pass = 0; pass < 3; ++pass) {
      ArraySnapshot snap = slot->Acquire();
      snap.SumRange(0, n);
    }
    return slot;
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
  ArrayRegistry registry_;
  adapt::MachineCaps machine_;
  adapt::ArrayCosts costs_;
};

TEST_F(AdaptationDaemonTest, AdaptSlotPublishesReplicatedCompressedForMemBoundReadOnly) {
  const uint64_t n = 10'000;
  ArraySlot* slot = MakeReadOnlySlot("ranks", n);
  AdaptationDaemon daemon = MakeDaemon();

  ASSERT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(daemon.adaptations(), 1u);
  EXPECT_EQ(slot->placement().kind, smart::Placement::kReplicated);
  EXPECT_EQ(slot->bits(), 10u);
  EXPECT_EQ(slot->sequence(), 2u);

  // Contents survived the restructure (read through a fresh snapshot).
  ArraySnapshot snap = slot->Acquire();
  for (uint64_t i = 0; i < n; i += 97) {
    ASSERT_EQ(snap.Get(i), i % 1024);
  }

  // Same counters on the new configuration: the choice is stable, no
  // ping-pong rebuild.
  EXPECT_FALSE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(slot->sequence(), 2u);
}

TEST_F(AdaptationDaemonTest, AdaptSlotLeavesCpuBoundSlotAlone) {
  ArraySlot* slot = MakeReadOnlySlot("cpu", 4096);
  AdaptationDaemon daemon = MakeDaemon();
  adapt::WorkloadCounters counters = MemBoundStreamingCounters(machine_);
  counters.max_mem_utilization = 0.2;  // not memory bound: nothing to buy
  counters.max_ic_utilization = 0.2;
  EXPECT_FALSE(daemon.AdaptSlot(*slot, counters));
  EXPECT_EQ(slot->sequence(), 1u);
  EXPECT_EQ(daemon.adaptations(), 0u);
}

TEST_F(AdaptationDaemonTest, HysteresisMarginBlocksMarginalWins) {
  ArraySlot* slot = MakeReadOnlySlot("stable", 4096);
  DaemonOptions options;
  options.min_predicted_win = 100.0;  // no realistic prediction clears 100x
  AdaptationDaemon daemon = MakeDaemon(options);
  EXPECT_FALSE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(slot->sequence(), 1u);
}

TEST_F(AdaptationDaemonTest, SynthesizeCountersMapsSampleToRates) {
  SlotSample sample;
  sample.sequential_reads = 3000;
  sample.random_reads = 1000;
  sample.writes = 0;
  sample.seconds = 2.0;
  const adapt::WorkloadCounters c =
      AdaptationDaemon::SynthesizeCounters(sample, /*length=*/1000, machine_,
                                           /*cycles_per_access=*/4.0);
  EXPECT_DOUBLE_EQ(c.accesses_per_second, 2000.0);
  EXPECT_DOUBLE_EQ(c.random_fraction, 0.25);
  EXPECT_DOUBLE_EQ(c.dataset_bytes, 8000.0);
  // 2000 accesses/s * 8 B / 2 sockets of demand against a real machine's
  // caps: utilizations are tiny but well-formed, and the estimator's
  // preconditions (positive exec and bandwidth) hold.
  EXPECT_GT(c.exec_current_per_socket, 0.0);
  EXPECT_GT(c.bw_current_memory, 0.0);
  EXPECT_GE(c.max_mem_utilization, 0.0);
  EXPECT_LE(c.max_mem_utilization, 1.0);
  EXPECT_GE(c.max_ic_utilization, 0.0);
  EXPECT_LE(c.max_ic_utilization, 1.0);
  EXPECT_FALSE(c.memory_bound());
}

TEST_F(AdaptationDaemonTest, HintsTrackLifetimeReadsAndWrites) {
  const uint64_t n = 2048;
  ArraySlot* slot = MakeReadOnlySlot("hints", n);
  adapt::SoftwareHints hints = AdaptationDaemon::HintsFor(*slot);
  EXPECT_TRUE(hints.read_only);
  EXPECT_TRUE(hints.mostly_reads);
  EXPECT_DOUBLE_EQ(hints.linear_passes, 3.0);
  EXPECT_DOUBLE_EQ(hints.random_passes, 0.0);

  slot->Write(0, 1);
  hints = AdaptationDaemon::HintsFor(*slot);
  EXPECT_FALSE(hints.read_only);
  EXPECT_TRUE(hints.mostly_reads);  // one write vs 3 * 2048 reads
}

TEST_F(AdaptationDaemonTest, RunOnceSkipsThinSamplesAndCountsPasses) {
  ArraySlot* slot = registry_.Create("thin", 256, smart::PlacementSpec::Interleaved(), 64);
  {
    ArraySnapshot snap = slot->Acquire();
    snap.Get(0);
    snap.Get(1);  // far below min_sampled_accesses
  }
  AdaptationDaemon daemon = MakeDaemon();
  EXPECT_EQ(daemon.RunOnce(), 0);
  EXPECT_EQ(daemon.passes(), 1u);
  EXPECT_EQ(slot->sequence(), 0u);
}

TEST_F(AdaptationDaemonTest, BackgroundThreadRunsPassesUntilStopped) {
  DaemonOptions options;
  options.interval = std::chrono::milliseconds(1);
  AdaptationDaemon daemon = MakeDaemon(options);
  EXPECT_FALSE(daemon.running());
  daemon.Start();
  daemon.Start();  // idempotent
  EXPECT_TRUE(daemon.running());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon.passes() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(daemon.passes(), 2u);
  daemon.Stop();
  daemon.Stop();  // idempotent
  EXPECT_FALSE(daemon.running());
}

// ---- per-shard worker set ----

TEST(DaemonWorkerSetTest, WorkersDrainSampleQueuesAcrossShards) {
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  rts::WorkerPool pool(topo, rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false});
  ArrayRegistry::Options reg_options;
  reg_options.num_shards = 8;
  ArrayRegistry registry(topo, reg_options);
  constexpr int kSlots = 64;
  for (int i = 0; i < kSlots; ++i) {
    registry.Create("drain-" + std::to_string(i), 64,
                    smart::PlacementSpec::Interleaved(), 16);
  }
  // Touch every slot so each enqueues itself on its shard's sample queue.
  for (ArraySlot* slot : registry.slots()) {
    ArraySnapshot snap = slot->TryAcquire();
    ASSERT_TRUE(snap.valid());
    snap.SumRange(0, 64);
  }
  int64_t queued = 0;
  for (int s = 0; s < registry.num_shards(); ++s) {
    queued += registry.shard_queue_depth(s);
  }
  EXPECT_EQ(queued, kSlots);

  DaemonOptions options;
  options.interval = std::chrono::milliseconds(1);
  options.num_workers = 3;
  AdaptationDaemon daemon(registry, pool,
                          adapt::MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core()),
                          adapt::ArrayCosts::FromCostModel(sim::CostModel::Default()),
                          options);
  daemon.Start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int64_t remaining = queued;
  while (remaining != 0 && std::chrono::steady_clock::now() < deadline) {
    remaining = 0;
    for (int s = 0; s < registry.num_shards(); ++s) {
      remaining += registry.shard_queue_depth(s);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Stop();
  EXPECT_EQ(remaining, 0) << "worker set left sample queues undrained";
  EXPECT_GT(daemon.passes(), 0u);
}

#ifdef SA_OBS
TEST(DaemonWorkerSetTest, SpareWorkerStealsTheOnlyShard) {
  // One shard, two workers: every pass the spare worker services is by
  // definition a steal. With continuous traffic and a 1 ms interval the
  // steal counter has to move.
  const platform::Topology topo = platform::Topology::Synthetic(2, 2);
  rts::WorkerPool pool(topo, rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false});
  ArrayRegistry registry(topo);  // single shard
  ArraySlot* slot = registry.Create("stolen", 64, smart::PlacementSpec::Interleaved(), 16);

  const uint64_t claims_before = obs::CounterValue(obs::kDaemonShardClaims);
  const uint64_t steals_before = obs::CounterValue(obs::kDaemonShardSteals);
  DaemonOptions options;
  options.interval = std::chrono::milliseconds(1);
  options.num_workers = 2;
  AdaptationDaemon daemon(registry, pool,
                          adapt::MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core()),
                          adapt::ArrayCosts::FromCostModel(sim::CostModel::Default()),
                          options);
  daemon.Start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (obs::CounterValue(obs::kDaemonShardSteals) == steals_before &&
         std::chrono::steady_clock::now() < deadline) {
    ArraySnapshot snap = slot->TryAcquire();
    if (snap.valid()) {
      snap.SumRange(0, 64);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  daemon.Stop();
  EXPECT_GT(obs::CounterValue(obs::kDaemonShardSteals), steals_before);
  EXPECT_GT(obs::CounterValue(obs::kDaemonShardClaims) +
                obs::CounterValue(obs::kDaemonShardSteals),
            claims_before + steals_before);
}

TEST_F(AdaptationDaemonTest, BackpressureDefersRestructuresUnderRetiredDebt) {
  // A parked reader keeps retired versions alive; with max_retired_debt=0
  // the daemon must keep draining samples but refuse new restructures,
  // counting each deferral.
  ArraySlot* slot = MakeReadOnlySlot("debt", 1 << 16);
  // Park a pin, then publish once more: the retired version cannot drain.
  ArraySnapshot parked = slot->TryAcquire();
  ASSERT_TRUE(parked.valid());
  {
    auto storage = smart::SmartArray::Allocate(slot->length(),
                                               smart::PlacementSpec::Interleaved(), 64, topo_);
    for (uint64_t i = 0; i < slot->length(); ++i) {
      storage->Init(i, i % 1024);
    }
    ASSERT_TRUE(registry_.Publish(*slot, std::move(storage), slot->write_count()));
  }
  // Rebuild the §5.1 adaptation-candidate profile on the new version.
  for (int pass = 0; pass < 3; ++pass) {
    ArraySnapshot snap = slot->Acquire();
    snap.SumRange(0, slot->length());
  }
  const uint64_t drops_before = obs::CounterValue(obs::kDaemonBackpressureDrops);
  DaemonOptions options;
  options.min_sampled_accesses = 16;
  options.max_retired_debt = 0;
  AdaptationDaemon daemon = MakeDaemon(options);
  EXPECT_EQ(daemon.RunOnce(), 0);  // deferred, not adapted
  EXPECT_EQ(slot->sequence(), 2u);
  EXPECT_GT(obs::CounterValue(obs::kDaemonBackpressureDrops), drops_before);

  // Debt drains once the reader leaves; restructures go through again.
  parked.Release();
  while (registry_.Reclaim() == 0) {
  }
  EXPECT_TRUE(daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)));
  EXPECT_EQ(slot->sequence(), 3u);
}
#endif  // SA_OBS

}  // namespace
}  // namespace sa::runtime
