// ArrayRegistry: snapshot consistency under concurrent restructures
// (differential vs a single-threaded oracle, no torn reads), write/publish
// serialization, and retire-only-after-pins-drain reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bits.h"
#include "runtime/registry.h"
#include "smart/for_delta.h"
#include "smart/smart_array.h"

namespace sa::runtime {
namespace {

class ArrayRegistryTest : public ::testing::Test {
 protected:
  ArrayRegistryTest() : topo_(platform::Topology::Synthetic(2, 2)), registry_(topo_) {}

  // Builds storage holding oracle[i] in the given shape, ready to Publish.
  std::unique_ptr<smart::SmartArray> Build(const std::vector<uint64_t>& oracle,
                                           smart::PlacementSpec placement, uint32_t bits) {
    auto storage = smart::SmartArray::Allocate(oracle.size(), placement, bits, topo_);
    for (uint64_t i = 0; i < oracle.size(); ++i) {
      storage->Init(i, oracle[i]);
    }
    return storage;
  }

  platform::Topology topo_;
  ArrayRegistry registry_;
};

TEST_F(ArrayRegistryTest, CreateOpenAndInitialState) {
  ArraySlot* slot =
      registry_.Create("ranks", 1000, smart::PlacementSpec::Interleaved(), 64);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(registry_.Open("ranks"), slot);
  EXPECT_EQ(registry_.Open("absent"), nullptr);
  EXPECT_EQ(registry_.size(), 1u);
  EXPECT_EQ(slot->length(), 1000u);
  EXPECT_EQ(slot->bits(), 64u);
  EXPECT_EQ(slot->sequence(), 0u);
  EXPECT_EQ(slot->placement().kind, smart::Placement::kInterleaved);
}

TEST_F(ArrayRegistryTest, WritesReadBackAndTrackWidth) {
  ArraySlot* slot = registry_.Create("w", 64, smart::PlacementSpec::Interleaved(), 64);
  slot->Write(3, uint64_t{1} << 40);
  slot->Write(3, 5);  // narrower overwrite must not shrink the tracked width
  slot->Write(7, 123);
  ArraySnapshot snap = slot->Acquire();
  EXPECT_EQ(snap.Get(3), 5u);
  EXPECT_EQ(snap.Get(7), 123u);
  EXPECT_EQ(slot->write_count(), 3u);
  EXPECT_EQ(slot->max_written_bits(), 41u);
}

TEST_F(ArrayRegistryTest, WriteWiderThanStorageDies) {
  ArraySlot* slot = registry_.Create("narrow", 64, smart::PlacementSpec::Interleaved(), 8);
  slot->Write(0, 255);
  EXPECT_DEATH(slot->Write(0, 256), "width");
}

TEST_F(ArrayRegistryTest, SnapshotClassifiesSequentialVersusRandom) {
  ArraySlot* slot = registry_.Create("c", 256, smart::PlacementSpec::Interleaved(), 64);
  {
    ArraySnapshot snap = slot->Acquire();
    for (uint64_t i = 0; i < 10; ++i) {
      snap.Get(i);  // first access counts as random, the next 9 as sequential
    }
    snap.Get(100);          // jump: random
    snap.Get(101);          // sequential
    snap.SumRange(0, 256);  // 256 sequential
  }
  const SlotSample sample = slot->DrainSample();
  EXPECT_EQ(sample.sequential_reads, 9u + 1u + 256u);
  EXPECT_EQ(sample.random_reads, 2u);
  EXPECT_EQ(sample.pins, 1u);
  EXPECT_GT(sample.seconds, 0.0);
  // A second drain only sees what happened since.
  EXPECT_EQ(slot->DrainSample().reads(), 0u);
}

TEST_F(ArrayRegistryTest, PublishSwapsVersionWhileOldSnapshotStaysConsistent) {
  const uint64_t n = 500;
  std::vector<uint64_t> oracle(n);
  for (uint64_t i = 0; i < n; ++i) {
    oracle[i] = (i * 37) & LowMask(12);
  }
  ArraySlot* slot = registry_.Create("p", n, smart::PlacementSpec::Interleaved(), 64);
  ASSERT_TRUE(
      registry_.Publish(*slot, Build(oracle, smart::PlacementSpec::Interleaved(), 64), 0));

  ArraySnapshot old_snap = slot->Acquire();
  EXPECT_EQ(old_snap.sequence(), 1u);

  ASSERT_TRUE(
      registry_.Publish(*slot, Build(oracle, smart::PlacementSpec::Replicated(), 12), 0));
  EXPECT_EQ(slot->sequence(), 2u);
  EXPECT_EQ(slot->bits(), 12u);

  // The old snapshot still reads its own version...
  EXPECT_EQ(old_snap.sequence(), 1u);
  EXPECT_EQ(old_snap.bits(), 64u);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(old_snap.Get(i), oracle[i]);
  }
  // ...while a fresh acquire sees the new one.
  ArraySnapshot fresh = slot->Acquire();
  EXPECT_EQ(fresh.sequence(), 2u);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(fresh.Get(i), oracle[i]);
  }
}

TEST_F(ArrayRegistryTest, PublishRefusedWhenWritesRacedTheRebuild) {
  const uint64_t n = 100;
  ArraySlot* slot = registry_.Create("r", n, smart::PlacementSpec::Interleaved(), 64);
  const uint64_t writes_before = slot->write_count();  // "rebuild starts here"
  slot->Write(0, 42);                                  // ...then a write lands
  std::vector<uint64_t> stale(n, 0);
  EXPECT_FALSE(registry_.Publish(
      *slot, Build(stale, smart::PlacementSpec::Interleaved(), 64), writes_before));
  EXPECT_EQ(slot->sequence(), 0u);  // refused publishes leave the slot alone
  ArraySnapshot snap = slot->Acquire();
  EXPECT_EQ(snap.Get(0), 42u);  // the racing write was not lost

  // With the current write count the publish goes through.
  std::vector<uint64_t> fresh(n, 0);
  fresh[0] = 42;
  EXPECT_TRUE(registry_.Publish(*slot, Build(fresh, smart::PlacementSpec::Interleaved(), 64),
                                slot->write_count()));
  EXPECT_EQ(slot->sequence(), 1u);
}

TEST_F(ArrayRegistryTest, RetiredStorageOutlivesEveryPinTakenBeforeTheSwap) {
  const uint64_t n = 100;
  std::vector<uint64_t> oracle(n, 7);
  ArraySlot* slot = registry_.Create("e", n, smart::PlacementSpec::Interleaved(), 64);

  ArraySnapshot pinned = slot->Acquire();  // pins the initial version
  ASSERT_TRUE(
      registry_.Publish(*slot, Build(oracle, smart::PlacementSpec::Replicated(), 8), 0));
  ASSERT_EQ(registry_.epoch().retired_count(), 1u);

  // While the snapshot is pinned the retired version must survive any number
  // of reclaim attempts — and must stay fully readable.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(registry_.Reclaim(), 0u);
  }
  EXPECT_EQ(registry_.epoch().retired_count(), 1u);
  EXPECT_EQ(pinned.sequence(), 0u);
  pinned.Get(n / 2);

  pinned.Release();
  size_t reclaimed = 0;
  for (int i = 0; i < 5 && reclaimed == 0; ++i) {
    reclaimed += registry_.Reclaim();
  }
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_EQ(registry_.epoch().retired_count(), 0u);
}

// The tentpole guarantee: concurrent readers differentially checked against
// a single-threaded oracle while the storage is restructured underneath them
// — every element of every snapshot matches, including cross-word 33-bit
// layouts where a torn read would surface as a corrupt value.
TEST_F(ArrayRegistryTest, ConcurrentReadersSeeOracleContentsAcrossRestructures) {
  const uint64_t n = 8192;
  std::vector<uint64_t> oracle(n);
  uint64_t oracle_sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    oracle[i] = (i * 2654435761u) & LowMask(12);
    oracle_sum += oracle[i];
  }
  ArraySlot* slot = registry_.Create("hot", n, smart::PlacementSpec::Interleaved(), 64);
  ASSERT_TRUE(
      registry_.Publish(*slot, Build(oracle, smart::PlacementSpec::Interleaved(), 64), 0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_checked{0};
  std::vector<std::thread> readers;
  const int kReaders = 4;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t stride = 97 + t;
      while (!stop.load(std::memory_order_acquire)) {
        ArraySnapshot snap = slot->Acquire();
        // Point reads against the oracle...
        for (uint64_t i = t; i < n; i += stride) {
          if (snap.Get(i) != oracle[i]) {
            ADD_FAILURE() << "torn/corrupt read at " << i << " seq " << snap.sequence();
            stop.store(true, std::memory_order_release);
            return;
          }
        }
        // ...and a block-kernel scan of the full range.
        if (snap.SumRange(0, n) != oracle_sum) {
          ADD_FAILURE() << "inconsistent sum at seq " << snap.sequence();
          stop.store(true, std::memory_order_release);
          return;
        }
        snapshots_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publisher: rotate through layouts (including the cross-word 33-bit one)
  // while readers hammer the slot, reclaiming as pins drain.
  const struct {
    smart::PlacementSpec placement;
    uint32_t bits;
  } configs[] = {
      {smart::PlacementSpec::Replicated(), 12},
      {smart::PlacementSpec::Interleaved(), 33},
      {smart::PlacementSpec::SingleSocket(1), 64},
      {smart::PlacementSpec::Interleaved(), 12},
  };
  const int kPublishes = 24;
  for (int p = 0; p < kPublishes; ++p) {
    const auto& config = configs[p % 4];
    ASSERT_TRUE(registry_.Publish(*slot, Build(oracle, config.placement, config.bits), 0));
    registry_.Reclaim();
  }
  // Let readers observe the final version too, then stop them.
  while (snapshots_checked.load(std::memory_order_relaxed) < 8 * kReaders &&
         !stop.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }

  EXPECT_EQ(slot->sequence(), 1u + kPublishes);
  EXPECT_GT(snapshots_checked.load(), 0u);
  // All pins are gone: bounded reclaim passes drain every retired version.
  for (int i = 0; i < 10 && registry_.epoch().retired_count() != 0; ++i) {
    registry_.Reclaim();
  }
  EXPECT_EQ(registry_.epoch().retired_count(), 0u);
  EXPECT_EQ(registry_.epoch().pinned_count(), 0);
}

TEST_F(ArrayRegistryTest, SnapshotScansMatchOracleAndSampleSelectivity) {
  const uint64_t n = 2000;
  std::vector<uint64_t> oracle(n);
  for (uint64_t i = 0; i < n; ++i) {
    oracle[i] = (i * 131) & LowMask(14);
  }
  ArraySlot* slot = registry_.Create("scan", n, smart::PlacementSpec::Interleaved(), 14);
  ASSERT_TRUE(registry_.Publish(*slot, Build(oracle, smart::PlacementSpec::Interleaved(), 14), 0));

  const smart::Predicate p{smart::CmpOp::kLt, 1000};
  uint64_t want_count = 0, want_sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (oracle[i] < 1000) {
      ++want_count;
      want_sum += oracle[i];
    }
  }
  {
    ArraySnapshot snap = slot->Acquire();
    EXPECT_EQ(snap.CountIf(0, n, p), want_count);
    EXPECT_EQ(snap.FilteredSum(0, n, p), want_sum);
    std::vector<uint64_t> bitmap((n + 63) / 64);
    EXPECT_EQ(snap.SelectIf(0, n, p, bitmap.data()), want_count);
  }
  // Two match-reporting scans over n elements each drive the selectivity
  // sample the daemon feeds the §6 encoding decision.
  const SlotSample sample = slot->DrainSample();
  EXPECT_EQ(sample.predicate_elems, 2 * n);
  EXPECT_EQ(sample.predicate_matches, 2 * want_count);
  const double selectivity = sample.predicate_selectivity();
  EXPECT_NEAR(selectivity, static_cast<double>(want_count) / n, 1e-9);
  // A slot that never scanned reports "no sample", not zero selectivity.
  ArraySlot* idle = registry_.Create("idle", 64, smart::PlacementSpec::Interleaved(), 8);
  EXPECT_LT(idle->DrainSample().predicate_selectivity(), 0.0);
}

TEST_F(ArrayRegistryTest, ForDeltaVersionServesReadsWritesAndScans) {
  const uint64_t n = 1500;
  std::vector<uint64_t> oracle(n);
  for (uint64_t i = 0; i < n; ++i) {
    oracle[i] = (i / sa::kChunkElems) * 500 + (i % 37);
  }
  ArraySlot* slot = registry_.Create("fd", n, smart::PlacementSpec::OsDefault(), 32);
  // Publish a frame-of-reference version, as the daemon would after the
  // selector picks the encoding.
  auto packed = Build(oracle, smart::PlacementSpec::OsDefault(), 32);
  auto fd = smart::ForDeltaArray::TryBuild(*packed, smart::PlacementSpec::OsDefault(), 32, topo_);
  ASSERT_NE(fd, nullptr);
  ASSERT_TRUE(registry_.Publish(*slot, std::move(fd), 0));

  ArraySnapshot snap = slot->Acquire();
  // Get and SumRange route through the virtual fallback (no codec shortcut
  // for non-bit-packed versions).
  EXPECT_EQ(snap.Get(1234), oracle[1234]);
  uint64_t want = 0;
  for (uint64_t i = 64; i < 1400; ++i) want += oracle[i];
  EXPECT_EQ(snap.SumRange(64, 1400), want);
  uint64_t want_count = 0;
  for (uint64_t i = 0; i < n; ++i) want_count += oracle[i] < 3000 ? 1 : 0;
  EXPECT_EQ(snap.CountIf(0, n, {smart::CmpOp::kLt, 3000}), want_count);
  snap.Release();

  // FetchAdd reads through the virtual interface and writes back through
  // InitAtomic; the delta stays inside the chunk frame.
  const uint64_t old = slot->FetchAdd(10, 3);
  EXPECT_EQ(old, oracle[10]);
  ArraySnapshot after = slot->Acquire();
  EXPECT_EQ(after.Get(10), oracle[10] + 3);
}

}  // namespace
}  // namespace sa::runtime
