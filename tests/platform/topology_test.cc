#include <gtest/gtest.h>

#include "platform/topology.h"

namespace sa::platform {
namespace {

TEST(TopologyTest, SyntheticLayoutIsSocketMajor) {
  const auto topo = Topology::Synthetic(2, 18);
  EXPECT_EQ(topo.num_sockets(), 2);
  EXPECT_EQ(topo.num_cpus(), 36);
  EXPECT_FALSE(topo.is_host());
  EXPECT_EQ(topo.socket(0).cpus.front(), 0);
  EXPECT_EQ(topo.socket(0).cpus.back(), 17);
  EXPECT_EQ(topo.socket(1).cpus.front(), 18);
  EXPECT_EQ(topo.SocketOfCpu(0), 0);
  EXPECT_EQ(topo.SocketOfCpu(17), 0);
  EXPECT_EQ(topo.SocketOfCpu(18), 1);
  EXPECT_EQ(topo.SocketOfCpu(35), 1);
  EXPECT_EQ(topo.SocketOfCpu(36), -1);
  EXPECT_EQ(topo.SocketOfCpu(-1), -1);
}

TEST(TopologyTest, SingleSocketSynthetic) {
  const auto topo = Topology::Synthetic(1, 4);
  EXPECT_EQ(topo.num_sockets(), 1);
  EXPECT_EQ(topo.num_cpus(), 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(topo.SocketOfCpu(c), 0);
  }
}

TEST(TopologyTest, HostTopologyIsSane) {
  const auto topo = Topology::Host();
  EXPECT_TRUE(topo.is_host());
  EXPECT_GE(topo.num_sockets(), 1);
  EXPECT_GE(topo.num_cpus(), 1);
  // Every listed CPU maps back to its socket.
  for (int s = 0; s < topo.num_sockets(); ++s) {
    for (const int cpu : topo.socket(s).cpus) {
      EXPECT_EQ(topo.SocketOfCpu(cpu), s);
    }
  }
}

TEST(TopologyTest, ToStringMentionsShape) {
  const auto topo = Topology::Synthetic(2, 8);
  const std::string s = topo.ToString();
  EXPECT_NE(s.find("2 socket"), std::string::npos);
  EXPECT_NE(s.find("16 cpu"), std::string::npos);
  EXPECT_NE(s.find("synthetic"), std::string::npos);
}

TEST(TopologyDeathTest, RejectsEmptyShape) {
  EXPECT_DEATH(Topology::Synthetic(0, 4), "non-empty");
  EXPECT_DEATH(Topology::Synthetic(2, 0), "non-empty");
}

}  // namespace
}  // namespace sa::platform
