#include <cstring>

#include <gtest/gtest.h>

#include "platform/numa_memory.h"

namespace sa::platform {
namespace {

TEST(MappedRegionTest, AllocatesZeroedPageAlignedMemory) {
  const auto topo = Topology::Synthetic(2, 4);
  MappedRegion region(1000, PagePolicy::kOsDefault, 0, topo);
  ASSERT_TRUE(region.valid());
  EXPECT_EQ(region.bytes(), MappedRegion::kPageSize);  // rounded up
  EXPECT_EQ(reinterpret_cast<uintptr_t>(region.data()) % MappedRegion::kPageSize, 0u);
  const auto* bytes = static_cast<const unsigned char*>(region.data());
  for (size_t i = 0; i < region.bytes(); ++i) {
    ASSERT_EQ(bytes[i], 0);
  }
}

TEST(MappedRegionTest, MemoryIsWritable) {
  const auto topo = Topology::Synthetic(2, 2);
  MappedRegion region(8192, PagePolicy::kInterleaved, 0, topo);
  std::memset(region.data(), 0xAB, region.bytes());
  EXPECT_EQ(static_cast<unsigned char*>(region.data())[8191], 0xAB);
}

TEST(MappedRegionTest, PinnedPagesLiveOnHomeSocket) {
  const auto topo = Topology::Synthetic(2, 4);
  MappedRegion region(4 * MappedRegion::kPageSize, PagePolicy::kPinned, 1, topo);
  EXPECT_EQ(region.pages(), 4u);
  for (size_t p = 0; p < region.pages(); ++p) {
    EXPECT_EQ(region.PageNode(p), 1);
  }
}

TEST(MappedRegionTest, InterleavedPagesRoundRobin) {
  const auto topo = Topology::Synthetic(2, 4);
  MappedRegion region(6 * MappedRegion::kPageSize, PagePolicy::kInterleaved, 0, topo);
  for (size_t p = 0; p < region.pages(); ++p) {
    EXPECT_EQ(region.PageNode(p), static_cast<int>(p % 2));
  }
  EXPECT_EQ(region.NodeOfByte(0), 0);
  EXPECT_EQ(region.NodeOfByte(MappedRegion::kPageSize), 1);
  EXPECT_EQ(region.NodeOfByte(2 * MappedRegion::kPageSize - 1), 1);
  EXPECT_EQ(region.NodeOfByte(2 * MappedRegion::kPageSize), 0);
}

TEST(MappedRegionTest, OsDefaultTracksFirstTouchSocket) {
  const auto topo = Topology::Synthetic(2, 4);
  MappedRegion region(2 * MappedRegion::kPageSize, PagePolicy::kOsDefault, 1, topo);
  for (size_t p = 0; p < region.pages(); ++p) {
    EXPECT_EQ(region.PageNode(p), 1);
  }
}

TEST(MappedRegionTest, MoveTransfersOwnership) {
  const auto topo = Topology::Synthetic(2, 2);
  MappedRegion a(4096, PagePolicy::kPinned, 0, topo);
  void* data = a.data();
  MappedRegion b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): move contract under test
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data(), data);
  MappedRegion c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.data(), data);
}

TEST(MappedRegionTest, SingleNodeHostNeverClaimsPhysicalPlacement) {
  const auto topo = Topology::Synthetic(2, 2);  // synthetic: never physical
  MappedRegion region(4096, PagePolicy::kPinned, 0, topo);
  EXPECT_FALSE(region.physically_placed());
}

TEST(MappedRegionTest, PolicyNames) {
  EXPECT_STREQ(ToString(PagePolicy::kOsDefault), "os-default");
  EXPECT_STREQ(ToString(PagePolicy::kPinned), "single-socket");
  EXPECT_STREQ(ToString(PagePolicy::kInterleaved), "interleaved");
}

TEST(MappedRegionDeathTest, RejectsBadArguments) {
  const auto topo = Topology::Synthetic(2, 2);
  EXPECT_DEATH(MappedRegion(0, PagePolicy::kOsDefault, 0, topo), "empty");
  EXPECT_DEATH(MappedRegion(4096, PagePolicy::kPinned, 5, topo), "socket");
}

}  // namespace
}  // namespace sa::platform
