// Concurrent graph analytics over registry-held property arrays: the
// GraphSnapshot wrappers (BFS, connected components, triangle counting,
// degree centrality, PageRank) must agree with the serial plain-CSR
// references while the AdaptationDaemon restructures the five CSR slots —
// the snapshot-consistency contract DESIGN.md §4i spells out.
//
// Thread-safety note for the sanitizer CI lane: every test here uploads the
// graph slots FIRST and only then lets the daemon run, so the daemon's
// rebuild scans never overlap slot writes — traversals are read-only
// through epoch-pinned snapshots, which is the race-free production shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/algorithms2.h"
#include "graph/concurrent.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/smart_graph.h"
#include "platform/topology.h"
#include "rts/worker_pool.h"
#include "runtime/daemon.h"
#include "runtime/registry.h"
#include "sim/machine_spec.h"

namespace sa::graph {
namespace {

using runtime::AdaptationDaemon;
using runtime::ArrayRegistry;
using runtime::DaemonOptions;

// The §5.1 memory-bound streaming shape (same as the daemon tests): enough
// headroom that AdaptSlot deterministically publishes a restructure for a
// read-heavy slot.
adapt::WorkloadCounters MemBoundStreamingCounters(const adapt::MachineCaps& caps) {
  adapt::WorkloadCounters c;
  c.exec_current_per_socket = caps.exec_max_per_socket * 0.2;
  c.bw_current_memory = std::min(caps.bw_max_memory, 2 * caps.bw_max_interconnect) * 0.95;
  c.max_mem_utilization = 0.95;
  c.max_ic_utilization = 0.92;
  c.accesses_per_second = c.bw_current_memory * 2 / 8.0;
  c.elem_bytes = 8.0;
  c.dataset_bytes = 1e9;
  return c;
}

// Serial plain-CSR answers for every algorithm the snapshot wrappers run.
struct Reference {
  std::vector<uint64_t> bfs;
  std::vector<uint64_t> cc;
  uint64_t triangles = 0;
  std::vector<uint64_t> degree;
  PageRankResult pagerank;
};

Reference ComputeReference(const CsrGraph& csr, VertexId source) {
  Reference ref;
  if (csr.num_vertices() > 0) {
    ref.bfs = BfsLevels(csr, source);
    ref.pagerank = PageRank(csr);
  }
  ref.cc = ConnectedComponents(csr);
  ref.triangles = CountTriangles(csr);
  ref.degree = DegreeCentrality(csr);
  return ref;
}

class ConcurrentGraphTest : public ::testing::Test {
 protected:
  ConcurrentGraphTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}),
        daemon_pool_(topo_, rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false}),
        registry_(topo_),
        machine_(adapt::MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core())),
        costs_(adapt::ArrayCosts::FromCostModel(sim::CostModel::Default())) {}

  // The daemon rebuilds on its own pool: analytics own pool_, and one
  // WorkerPool cannot run two parallel regions at once (the production
  // service splits them the same way).
  AdaptationDaemon MakeDaemon(DaemonOptions options = {}) {
    return AdaptationDaemon(registry_, daemon_pool_, machine_, costs_, options);
  }

  // Pins a fresh snapshot per algorithm (so daemon publishes between runs
  // take effect) and checks all five answers against the reference.
  void ExpectMatchesReference(const RegistryCsrGraph& g, const CsrGraph& csr, VertexId source,
                              const Reference& ref, const std::string& label) {
    if (csr.num_vertices() > 0) {
      GraphSnapshot snapshot = g.Pin();
      ASSERT_TRUE(snapshot.valid()) << label;
      EXPECT_EQ(BfsLevels(pool_, snapshot, source, topo_), ref.bfs) << label;
      const PageRankResult pr = PageRank(pool_, snapshot, topo_);
      EXPECT_EQ(pr.iterations, ref.pagerank.iterations) << label;
      ASSERT_EQ(pr.ranks.size(), ref.pagerank.ranks.size()) << label;
      for (VertexId v = 0; v < csr.num_vertices(); ++v) {
        ASSERT_NEAR(pr.ranks[v], ref.pagerank.ranks[v], 1e-12) << label << " vertex " << v;
      }
      snapshot.Release();
    }
    GraphSnapshot snapshot = g.Pin();
    EXPECT_EQ(ConnectedComponents(pool_, snapshot, topo_), ref.cc) << label;
    EXPECT_EQ(CountTriangles(pool_, snapshot), ref.triangles) << label;
    EXPECT_EQ(DegreeCentrality(pool_, snapshot, topo_), ref.degree) << label;
    snapshot.Release();
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
  rts::WorkerPool daemon_pool_;
  ArrayRegistry registry_;
  adapt::MachineCaps machine_;
  adapt::ArrayCosts costs_;
};

// Every wrapper agrees with its serial reference across the Fig. 12
// representation tiers and NUMA placements, on uniform and power-law
// topologies — before any daemon gets involved.
TEST_F(ConcurrentGraphTest, MatchesSerialReferencesAcrossRepresentations) {
  using smart::PlacementSpec;
  struct GraphCase {
    const char* name;
    CsrGraph csr;
  };
  const GraphCase graphs[] = {
      {"uniform", UniformRandomGraph(/*num_vertices=*/401, /*out_degree=*/3, /*seed=*/11)},
      {"power-law", PowerLawGraph(/*num_vertices=*/301, /*num_edges=*/1500, /*alpha=*/0.7,
                                  /*seed=*/5)},
  };
  const struct {
    const char* tier;
    bool compress_indexes;
    bool compress_edges;
  } tiers[] = {{"U", false, false}, {"V", true, false}, {"V+E", true, true}};
  const PlacementSpec placements[] = {PlacementSpec::OsDefault(), PlacementSpec::Interleaved(),
                                      PlacementSpec::Replicated()};

  int upload = 0;
  for (const auto& graph_case : graphs) {
    const Reference ref = ComputeReference(graph_case.csr, /*source=*/0);
    for (const auto& tier : tiers) {
      for (const auto& placement : placements) {
        SmartGraphOptions options;
        options.placement = placement;
        options.compress_indexes = tier.compress_indexes;
        options.compress_edges = tier.compress_edges;
        RegistryCsrGraph g(registry_, "rep" + std::to_string(upload++), graph_case.csr, options);
        ExpectMatchesReference(g, graph_case.csr, /*source=*/0, ref,
                               std::string(graph_case.name) + " " + tier.tier + " " +
                                   ToString(placement));
      }
    }
  }
}

// Degenerate topologies the generators never emit: vertexless, edgeless,
// self-loops, zero-degree vertices, disconnected components. The compressed
// tier is the interesting one (1-bit-ish arrays, ragged chunk tails).
TEST_F(ConcurrentGraphTest, EdgeCaseGraphsMatchSerialReferences) {
  struct EdgeCase {
    const char* name;
    VertexId source;
    CsrGraph csr;
  };
  const EdgeCase cases[] = {
      {"vertexless", 0, CsrGraph::FromEdges(0, {})},
      {"edgeless", 3, CsrGraph::FromEdges(6, {})},
      {"self-loops", 0, CsrGraph::FromEdges(5, {{0, 0}, {1, 1}, {2, 0}, {0, 2}, {3, 4}})},
      {"disconnected", 1,
       CsrGraph::FromEdges(9, {{0, 1}, {1, 2}, {2, 0}, {5, 6}, {6, 5}, {6, 7}, {7, 5}})},
  };
  for (const auto& edge_case : cases) {
    const Reference ref = ComputeReference(edge_case.csr, edge_case.source);
    for (const bool compressed : {false, true}) {
      SmartGraphOptions options;
      options.compress_indexes = compressed;
      options.compress_edges = compressed;
      RegistryCsrGraph g(registry_,
                         std::string(edge_case.name) + (compressed ? ".ve" : ".u"),
                         edge_case.csr, options);
      ExpectMatchesReference(g, edge_case.csr, edge_case.source, ref,
                             std::string(edge_case.name) + (compressed ? " V+E" : " U"));
    }
  }
}

// Deterministic restructure: AdaptSlot with crafted mem-bound counters
// publishes new representations for the five slots; fresh pins observe the
// new versions (sequence_sum moves) and every answer is unchanged. This is
// the per-array divergence case — each slot narrows to ITS OWN data width,
// so begin/rbegin (offset-valued) and edge/redge (id-valued) come out at
// different widths and the kernels must not assume any two match.
TEST_F(ConcurrentGraphTest, DaemonRestructurePreservesAnswersAcrossPins) {
  const CsrGraph csr = PowerLawGraph(/*num_vertices=*/257, /*num_edges=*/1300, /*alpha=*/0.7,
                                     /*seed=*/3);
  const Reference ref = ComputeReference(csr, /*source=*/2);
  RegistryCsrGraph g(registry_, "adapt", csr, SmartGraphOptions{});  // U tier: room to narrow

  GraphSnapshot before = g.Pin();
  const uint64_t sum_before = before.sequence_sum();
  before.Release();
  ExpectMatchesReference(g, csr, /*source=*/2, ref, "pre-adaptation");

  AdaptationDaemon daemon = MakeDaemon();
  int published = 0;
  for (runtime::ArraySlot* slot : g.slots()) {
    published += daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)) ? 1 : 0;
  }
  ASSERT_GT(published, 0);

  GraphSnapshot after = g.Pin();
  EXPECT_GT(after.sequence_sum(), sum_before);
  // The five slots adapted independently: offsets and vertex ids hold
  // different value ranges, so their minimal widths genuinely differ.
  const CsrView view = after.view();
  EXPECT_NE(view.begin_bits(), view.edge_bits());
  after.Release();

  ExpectMatchesReference(g, csr, /*source=*/2, ref, "post-adaptation");
}

// Snapshot pinning is what makes mid-traversal publishes invisible: results
// computed over a snapshot pinned BEFORE the restructure still match the
// references (the pinned versions stay alive and immutable), while a fresh
// pin sees the new representation. Regression cover for degree centrality
// and PageRank, which once read slot state outside the pinned path.
TEST_F(ConcurrentGraphTest, PinnedSnapshotSurvivesConcurrentPublish) {
  const CsrGraph csr = UniformRandomGraph(/*num_vertices=*/240, /*out_degree=*/4, /*seed=*/9);
  const Reference ref = ComputeReference(csr, /*source=*/7);
  RegistryCsrGraph g(registry_, "pinned", csr, SmartGraphOptions{});
  // Read history first: the selector's §6.1 hints come from the slots'
  // lifetime counters, and a write-only slot never looks worth compressing.
  ExpectMatchesReference(g, csr, /*source=*/7, ref, "warmup");

  GraphSnapshot old_snapshot = g.Pin();
  const uint64_t old_sum = old_snapshot.sequence_sum();

  AdaptationDaemon daemon = MakeDaemon();
  int published = 0;
  for (runtime::ArraySlot* slot : g.slots()) {
    published += daemon.AdaptSlot(*slot, MemBoundStreamingCounters(machine_)) ? 1 : 0;
  }
  ASSERT_GT(published, 0);

  // The old pin still reads the pre-publish representation, consistently.
  EXPECT_EQ(old_snapshot.sequence_sum(), old_sum);
  EXPECT_EQ(BfsLevels(pool_, old_snapshot, 7, topo_), ref.bfs);
  EXPECT_EQ(ConnectedComponents(pool_, old_snapshot, topo_), ref.cc);
  EXPECT_EQ(CountTriangles(pool_, old_snapshot), ref.triangles);
  EXPECT_EQ(DegreeCentrality(pool_, old_snapshot, topo_), ref.degree);
  const PageRankResult pr = PageRank(pool_, old_snapshot, topo_);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_NEAR(pr.ranks[v], ref.pagerank.ranks[v], 1e-12) << "vertex " << v;
  }
  old_snapshot.Release();

  GraphSnapshot fresh = g.Pin();
  EXPECT_GT(fresh.sequence_sum(), old_sum);
  fresh.Release();
  ExpectMatchesReference(g, csr, /*source=*/7, ref, "fresh pin");
}

// Released snapshots flush their per-array access tallies into the slots'
// workload counters — the channel the daemon adapts through. Different
// algorithms leave recognizably different mixes: degree centrality streams
// the offset arrays and never touches edges; PageRank gathers the degree
// property at random.
TEST_F(ConcurrentGraphTest, AccessMixReachesSlotCounters) {
  const CsrGraph csr = UniformRandomGraph(/*num_vertices=*/200, /*out_degree=*/3, /*seed=*/4);
  RegistryCsrGraph g(registry_, "mix", csr, SmartGraphOptions{});
  // Slot order: begin, edge, rbegin, redge, deg. Drop the upload's writes.
  for (runtime::ArraySlot* slot : g.slots()) {
    slot->DrainSample();
  }

  GraphSnapshot snapshot = g.Pin();
  DegreeCentrality(pool_, snapshot, topo_);
  snapshot.Release();
  runtime::SlotSample begin_sample = g.slots()[0]->DrainSample();
  runtime::SlotSample edge_sample = g.slots()[1]->DrainSample();
  EXPECT_GE(begin_sample.sequential_reads, csr.num_vertices() + 1);
  EXPECT_EQ(begin_sample.random_reads, 0u);
  EXPECT_EQ(edge_sample.reads(), 0u);

  snapshot = g.Pin();
  PageRank(pool_, snapshot, topo_);
  snapshot.Release();
  runtime::SlotSample degree_sample = g.slots()[4]->DrainSample();
  runtime::SlotSample redge_sample = g.slots()[3]->DrainSample();
  EXPECT_GT(degree_sample.random_reads, 0u);
  EXPECT_GT(redge_sample.sequential_reads, 0u);
}

// RegistryCsrGraph seals its five slots after upload, so the daemon's §6.1
// hints treat the topology as read-only — without the seal the upload
// writes dominate the lifetime counters and replication/compression stay
// unreachable until ~20 read passes amortize them.
TEST_F(ConcurrentGraphTest, UploadSealsSlotsReadOnlyForAdaptationHints) {
  const CsrGraph csr = UniformRandomGraph(/*num_vertices=*/64, /*out_degree=*/2, /*seed=*/1);
  RegistryCsrGraph g(registry_, "seal", csr, SmartGraphOptions{});
  for (runtime::ArraySlot* slot : g.slots()) {
    EXPECT_GT(slot->write_count(), 0u) << slot->name();
    EXPECT_EQ(slot->unsealed_write_count(), 0u) << slot->name();
    EXPECT_TRUE(AdaptationDaemon::HintsFor(*slot).read_only) << slot->name();
  }
  // A genuine post-upload write flips the hint back off.
  runtime::ArraySlot* begin_slot = g.slots()[0];
  begin_slot->Write(0, 0);
  EXPECT_EQ(begin_slot->unsealed_write_count(), 1u);
  EXPECT_FALSE(AdaptationDaemon::HintsFor(*begin_slot).read_only);
}

// The live-daemon soak (the TSan lane runs this): slots uploaded first,
// then the daemon's background workers restructure them with a hair-trigger
// configuration while the analytics loop pins/traverses/releases. Two
// graphs fed by different algorithm mixes, so the daemon sees genuinely
// divergent workloads. Every iteration must reproduce the serial answers.
TEST_F(ConcurrentGraphTest, LiveDaemonTraversalsStayConsistent) {
  const CsrGraph uniform =
      UniformRandomGraph(/*num_vertices=*/350, /*out_degree=*/4, /*seed=*/21);
  const CsrGraph skewed =
      PowerLawGraph(/*num_vertices=*/280, /*num_edges=*/1400, /*alpha=*/0.8, /*seed=*/13);
  const Reference uniform_ref = ComputeReference(uniform, /*source=*/0);
  const Reference skewed_ref = ComputeReference(skewed, /*source=*/1);

  SmartGraphOptions options;
  options.compress_indexes = true;  // start narrow so widening is also in play
  RegistryCsrGraph gu(registry_, "live.u", uniform, options);
  RegistryCsrGraph gs(registry_, "live.s", skewed, SmartGraphOptions{});

  DaemonOptions daemon_options;
  daemon_options.interval = std::chrono::milliseconds(1);
  daemon_options.min_predicted_win = -1.0;  // adapt on any predicted delta
  daemon_options.min_sampled_accesses = 32;
  daemon_options.num_workers = 2;
  AdaptationDaemon daemon = MakeDaemon(daemon_options);
  daemon.Start();

  for (int iter = 0; iter < 6; ++iter) {
    ExpectMatchesReference(gu, uniform, /*source=*/0, uniform_ref,
                           "uniform iter " + std::to_string(iter));
    ExpectMatchesReference(gs, skewed, /*source=*/1, skewed_ref,
                           "skewed iter " + std::to_string(iter));
  }

  daemon.Stop();
  EXPECT_GT(daemon.passes(), 0u);
  // One more sweep after the daemon quiesced, over whatever representations
  // it left behind.
  ExpectMatchesReference(gu, uniform, /*source=*/0, uniform_ref, "uniform post-stop");
  ExpectMatchesReference(gs, skewed, /*source=*/1, skewed_ref, "skewed post-stop");
}

}  // namespace
}  // namespace sa::graph
