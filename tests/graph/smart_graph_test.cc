// Smart-array graph storage: every Fig. 12 variant must preserve the CSR
// contents exactly, with the expected widths and footprints.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/smart_graph.h"

namespace sa::graph {
namespace {

class SmartGraphTest : public ::testing::Test {
 protected:
  SmartGraphTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}),
        csr_(UniformRandomGraph(3000, 4, 99)) {}

  void VerifyMatchesCsr(const SmartCsrGraph& g) {
    const auto* begin = g.begin().GetReplica(0);
    const auto* rbegin = g.rbegin().GetReplica(0);
    const auto* edge = g.edge().GetReplica(0);
    const auto* redge = g.redge().GetReplica(0);
    for (VertexId v = 0; v <= csr_.num_vertices(); ++v) {
      ASSERT_EQ(g.begin().Get(v, begin), csr_.begin()[v]) << "begin[" << v << "]";
      ASSERT_EQ(g.rbegin().Get(v, rbegin), csr_.rbegin()[v]);
    }
    for (EdgeId e = 0; e < csr_.num_edges(); ++e) {
      ASSERT_EQ(g.edge().Get(e, edge), csr_.edge()[e]) << "edge[" << e << "]";
      ASSERT_EQ(g.redge().Get(e, redge), csr_.redge()[e]);
    }
    for (VertexId v = 0; v < csr_.num_vertices(); ++v) {
      ASSERT_EQ(g.out_degree().Get(v, g.out_degree().GetReplica(0)), csr_.OutDegree(v));
    }
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
  CsrGraph csr_;
};

TEST_F(SmartGraphTest, UncompressedVariantU) {
  SmartGraphOptions options;
  SmartCsrGraph g(csr_, options, topo_, pool_);
  EXPECT_EQ(g.index_bits(), 64u);
  EXPECT_EQ(g.edge_bits(), 32u);
  EXPECT_EQ(g.degree_bits(), 64u);
  VerifyMatchesCsr(g);
}

TEST_F(SmartGraphTest, VariantVCompressesIndexes) {
  SmartGraphOptions options;
  options.compress_indexes = true;
  SmartCsrGraph g(csr_, options, topo_, pool_);
  // 12000 edges -> offsets fit in 14 bits; degrees are small.
  EXPECT_EQ(g.index_bits(), BitsForValue(csr_.num_edges()));
  EXPECT_LT(g.index_bits(), 64u);
  EXPECT_LT(g.degree_bits(), 64u);
  EXPECT_EQ(g.edge_bits(), 32u);
  VerifyMatchesCsr(g);
}

TEST_F(SmartGraphTest, VariantVePlusCompressesEdgesToo) {
  SmartGraphOptions options;
  options.compress_indexes = true;
  options.compress_edges = true;
  SmartCsrGraph g(csr_, options, topo_, pool_);
  EXPECT_LE(g.edge_bits(), BitsForValue(csr_.num_vertices() - 1));
  EXPECT_LT(g.edge_bits(), 32u);
  VerifyMatchesCsr(g);
}

TEST_F(SmartGraphTest, FootprintShrinksAcrossVariants) {
  SmartGraphOptions u;
  SmartGraphOptions v;
  v.compress_indexes = true;
  SmartGraphOptions ve;
  ve.compress_indexes = true;
  ve.compress_edges = true;
  const uint64_t fu = SmartCsrGraph(csr_, u, topo_, pool_).footprint_bytes();
  const uint64_t fv = SmartCsrGraph(csr_, v, topo_, pool_).footprint_bytes();
  const uint64_t fve = SmartCsrGraph(csr_, ve, topo_, pool_).footprint_bytes();
  EXPECT_LT(fv, fu);
  EXPECT_LT(fve, fv);
}

TEST_F(SmartGraphTest, ReplicatedPlacementDoublesFootprintAndMatches) {
  SmartGraphOptions options;
  options.placement = smart::PlacementSpec::Replicated();
  SmartCsrGraph repl(csr_, options, topo_, pool_);
  VerifyMatchesCsr(repl);
  // Second replica identical.
  for (EdgeId e = 0; e < csr_.num_edges(); e += 37) {
    EXPECT_EQ(repl.edge().Get(e, repl.edge().GetReplica(1)), csr_.edge()[e]);
  }
  SmartGraphOptions single;
  SmartCsrGraph one(csr_, single, topo_, pool_);
  EXPECT_EQ(repl.footprint_bytes(), 2 * one.footprint_bytes());
}

TEST_F(SmartGraphTest, AllPlacementsPreserveContents) {
  for (const auto& placement :
       {smart::PlacementSpec::OsDefault(), smart::PlacementSpec::SingleSocket(1),
        smart::PlacementSpec::Interleaved(), smart::PlacementSpec::Replicated()}) {
    SmartGraphOptions options;
    options.placement = placement;
    options.compress_indexes = true;
    options.compress_edges = true;
    SmartCsrGraph g(csr_, options, topo_, pool_);
    VerifyMatchesCsr(g);
  }
}

}  // namespace
}  // namespace sa::graph
