#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace sa::graph {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sa_graph_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  static void ExpectSameGraph(const CsrGraph& a, const CsrGraph& b) {
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    EXPECT_EQ(a.begin(), b.begin());
    EXPECT_EQ(a.edge(), b.edge());
    EXPECT_EQ(a.rbegin(), b.rbegin());
    EXPECT_EQ(a.redge(), b.redge());
  }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, TextRoundTrip) {
  const CsrGraph g = PowerLawGraph(500, 4000, 0.5, 9);
  WriteEdgeListText(g, Path("g.txt"));
  ExpectSameGraph(ReadEdgeListText(Path("g.txt")), g);
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  const CsrGraph g = UniformRandomGraph(800, 5, 11);
  WriteEdgeListBinary(g, Path("g.bin"));
  ExpectSameGraph(ReadEdgeListBinary(Path("g.bin")), g);
}

TEST_F(GraphIoTest, BinaryPreservesIsolatedTailVertices) {
  // Text cannot represent trailing isolated vertices (no edges mention
  // them); binary carries the vertex count explicitly.
  CsrGraph g = CsrGraph::FromEdges(10, {{0, 1}});
  WriteEdgeListBinary(g, Path("iso.bin"));
  const CsrGraph loaded = ReadEdgeListBinary(Path("iso.bin"));
  EXPECT_EQ(loaded.num_vertices(), 10u);
  EXPECT_EQ(loaded.num_edges(), 1u);
}

TEST_F(GraphIoTest, LoadGraphSniffsFormat) {
  const CsrGraph g = UniformRandomGraph(300, 2, 3);
  WriteEdgeListText(g, Path("sniff.txt"));
  WriteEdgeListBinary(g, Path("sniff.bin"));
  ExpectSameGraph(LoadGraph(Path("sniff.txt")), g);
  ExpectSameGraph(LoadGraph(Path("sniff.bin")), g);
}

TEST_F(GraphIoTest, TextSkipsCommentsAndBlankLines) {
  {
    std::ofstream out(Path("c.txt"));
    out << "# header comment\n\n0 1\n# mid comment\n1 2\n";
  }
  const CsrGraph g = ReadEdgeListText(Path("c.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(GraphIoTest, RejectsGarbage) {
  {
    std::ofstream out(Path("bad.txt"));
    out << "0 not-a-number\n";
  }
  EXPECT_DEATH(ReadEdgeListText(Path("bad.txt")), "malformed");
  {
    std::ofstream out(Path("trunc.bin"), std::ios::binary);
    const uint32_t magic = kEdgeListMagic;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  }
  EXPECT_DEATH(ReadEdgeListBinary(Path("trunc.bin")), "");
  EXPECT_DEATH(ReadEdgeListBinary(Path("missing.bin")), "open");
}

TEST_F(GraphIoTest, StatsReportWidths) {
  const CsrGraph g = UniformRandomGraph(1000, 3, 7);
  const GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_vertices, 1000u);
  EXPECT_EQ(stats.num_edges, 3000u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 3.0);
  EXPECT_EQ(stats.edge_bits_required, sa::BitsForValue(999));
  EXPECT_EQ(stats.index_bits_required, sa::BitsForValue(3000));
  EXPECT_GE(stats.max_in_degree, 3u);  // some vertex gets above-average in-edges
  EXPECT_EQ(stats.max_out_degree, 3u);
}

}  // namespace
}  // namespace sa::graph
