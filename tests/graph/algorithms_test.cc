// Algorithm correctness: smart-array parallel kernels vs serial references,
// across placements and compression variants.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace sa::graph {
namespace {

class AlgorithmsTest : public ::testing::Test {
 protected:
  AlgorithmsTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}),
        csr_(PowerLawGraph(2000, 20'000, 0.5, 21)) {}

  platform::Topology topo_;
  rts::WorkerPool pool_;
  CsrGraph csr_;
};

TEST_F(AlgorithmsTest, DegreeCentralityReferenceSanity) {
  const auto dc = DegreeCentrality(csr_);
  const uint64_t total = std::accumulate(dc.begin(), dc.end(), uint64_t{0});
  EXPECT_EQ(total, 2 * csr_.num_edges());  // every edge counted out + in
}

TEST_F(AlgorithmsTest, DegreeCentralitySmartMatchesReferenceAcrossVariants) {
  const auto want = DegreeCentrality(csr_);
  for (const bool compress : {false, true}) {
    for (const auto& placement :
         {smart::PlacementSpec::Interleaved(), smart::PlacementSpec::Replicated()}) {
      SmartGraphOptions options;
      options.placement = placement;
      options.compress_indexes = compress;
      SmartCsrGraph g(csr_, options, topo_, pool_);
      auto out = smart::SmartArray::Allocate(csr_.num_vertices(),
                                             smart::PlacementSpec::Interleaved(), 64, topo_);
      DegreeCentralitySmart(pool_, g, out.get());
      for (VertexId v = 0; v < csr_.num_vertices(); ++v) {
        ASSERT_EQ(out->Get(v, out->GetReplica(0)), want[v])
            << "vertex " << v << " compress=" << compress;
      }
    }
  }
}

TEST_F(AlgorithmsTest, PageRankReferenceProperties) {
  const auto result = PageRank(csr_);
  ASSERT_EQ(result.ranks.size(), csr_.num_vertices());
  // Ranks stay positive and bounded.
  double sum = 0.0;
  for (const double r : result.ranks) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
    sum += r;
  }
  // With damping 0.85, total mass stays near 1 (dangling vertices leak a
  // little, the generator rarely makes perfect sinks matter here).
  EXPECT_NEAR(sum, 1.0, 0.2);
  EXPECT_LE(result.iterations, 15);
}

TEST_F(AlgorithmsTest, PageRankPopularVerticesRankHigher) {
  const auto result = PageRank(csr_);
  // Power-law targets concentrate at low ids; their mean rank must beat the
  // tail's by a wide margin.
  double head = 0.0;
  double tail = 0.0;
  for (VertexId v = 0; v < 20; ++v) {
    head += result.ranks[v];
  }
  for (VertexId v = csr_.num_vertices() - 20; v < csr_.num_vertices(); ++v) {
    tail += result.ranks[v];
  }
  EXPECT_GT(head, 5 * tail);
}

TEST_F(AlgorithmsTest, PageRankSmartMatchesReferenceAcrossVariants) {
  const auto want = PageRank(csr_);
  struct Variant {
    bool compress_indexes;
    bool compress_edges;
    smart::PlacementSpec placement;
  };
  const Variant variants[] = {
      {false, false, smart::PlacementSpec::Interleaved()},
      {true, false, smart::PlacementSpec::Interleaved()},
      {true, true, smart::PlacementSpec::Interleaved()},
      {true, true, smart::PlacementSpec::Replicated()},
      {false, false, smart::PlacementSpec::SingleSocket(0)},
  };
  for (const auto& variant : variants) {
    SmartGraphOptions options;
    options.placement = variant.placement;
    options.compress_indexes = variant.compress_indexes;
    options.compress_edges = variant.compress_edges;
    SmartCsrGraph g(csr_, options, topo_, pool_);
    const auto got = PageRankSmart(pool_, g, topo_);
    ASSERT_EQ(got.iterations, want.iterations);
    for (VertexId v = 0; v < csr_.num_vertices(); v += 13) {
      ASSERT_NEAR(got.ranks[v], want.ranks[v], 1e-12)
          << "vertex " << v << " placement " << ToString(variant.placement);
    }
    EXPECT_NEAR(got.final_delta, want.final_delta, 1e-9);
  }
}

TEST_F(AlgorithmsTest, PageRankConvergesOnSmallGraph) {
  // A tiny strongly-connected cycle converges well before 15 iterations...
  CsrGraph cycle = CsrGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  PageRankOptions options;
  options.max_iterations = 50;
  const auto result = PageRank(cycle, options);
  EXPECT_LT(result.iterations, 50);
  EXPECT_LT(result.final_delta, options.tolerance);
  // ...to the uniform fixed point.
  for (const double r : result.ranks) {
    EXPECT_NEAR(r, 0.25, 1e-6);
  }
}

TEST_F(AlgorithmsTest, PageRankHonorsIterationCap) {
  PageRankOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;  // never converge
  const auto result = PageRank(csr_, options);
  EXPECT_EQ(result.iterations, 3);
}

}  // namespace
}  // namespace sa::graph
