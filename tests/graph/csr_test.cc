#include <map>
#include <utility>

#include <gtest/gtest.h>

#include "graph/csr.h"
#include "graph/generators.h"

namespace sa::graph {
namespace {

TEST(CsrTest, HandBuiltExample) {
  // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}});
  g.CheckInvariants();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
  EXPECT_EQ(g.InDegree(2), 2u);
  // Neighborhood lists ascend.
  EXPECT_EQ(g.edge()[g.begin()[0]], 1u);
  EXPECT_EQ(g.edge()[g.begin()[0] + 1], 2u);
  // Reverse edges of vertex 2: sources {0, 1}.
  EXPECT_EQ(g.redge()[g.rbegin()[2]], 0u);
  EXPECT_EQ(g.redge()[g.rbegin()[2] + 1], 1u);
}

TEST(CsrTest, EmptyGraphAndIsolatedVertices) {
  CsrGraph g = CsrGraph::FromEdges(5, {});
  g.CheckInvariants();
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 0u);
    EXPECT_EQ(g.InDegree(v), 0u);
  }
}

TEST(CsrTest, SelfLoopsAndParallelEdgesKept) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 0}, {0, 1}, {0, 1}});
  g.CheckInvariants();
  EXPECT_EQ(g.OutDegree(0), 3u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

TEST(CsrTest, ForwardAndReverseAgreeOnTotals) {
  CsrGraph g = UniformRandomGraph(2000, 5, 17);
  g.CheckInvariants();
  uint64_t out_total = 0;
  uint64_t in_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(CsrTest, ReverseIsExactTranspose) {
  CsrGraph g = UniformRandomGraph(300, 4, 5);
  // Count edge (u,v) occurrences on both sides; multisets must match.
  std::map<std::pair<VertexId, VertexId>, int> fwd;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.begin()[u]; e < g.begin()[u + 1]; ++e) {
      ++fwd[{u, g.edge()[e]}];
    }
  }
  std::map<std::pair<VertexId, VertexId>, int> rev;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (EdgeId e = g.rbegin()[v]; e < g.rbegin()[v + 1]; ++e) {
      ++rev[{g.redge()[e], v}];
    }
  }
  EXPECT_EQ(fwd, rev);
}

TEST(CsrDeathTest, RejectsOutOfRangeEndpoints) {
  EXPECT_DEATH(CsrGraph::FromEdges(2, {{0, 2}}), "out of range");
}

TEST(GeneratorTest, UniformGraphShape) {
  CsrGraph g = UniformRandomGraph(1000, 3, 42);
  g.CheckInvariants();
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_EQ(g.num_edges(), 3000u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.OutDegree(v), 3u);  // exactly 3 random edges per vertex (§5.2)
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  CsrGraph a = UniformRandomGraph(500, 2, 7);
  CsrGraph b = UniformRandomGraph(500, 2, 7);
  EXPECT_EQ(a.edge(), b.edge());
  EXPECT_EQ(a.begin(), b.begin());
  CsrGraph c = UniformRandomGraph(500, 2, 8);
  EXPECT_NE(a.edge(), c.edge());
}

TEST(GeneratorTest, PowerLawGraphIsSkewed) {
  CsrGraph g = PowerLawGraph(10'000, 100'000, 0.6, 3);
  g.CheckInvariants();
  EXPECT_EQ(g.num_edges(), 100'000u);
  // Twitter-like skew: the top 1% of vertices by id (the popular head)
  // should receive far more than 1% of the in-edges.
  uint64_t head_in = 0;
  for (VertexId v = 0; v < 100; ++v) {
    head_in += g.InDegree(v);
  }
  EXPECT_GT(head_in, g.num_edges() / 10);  // >10% of edges on 1% of vertices
  // Sources stay roughly uniform.
  uint64_t head_out = 0;
  for (VertexId v = 0; v < 100; ++v) {
    head_out += g.OutDegree(v);
  }
  EXPECT_LT(head_out, g.num_edges() / 20);
}

}  // namespace
}  // namespace sa::graph
