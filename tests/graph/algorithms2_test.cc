// BFS / connected components / triangle counting: smart-array parallel
// kernels vs serial references, plus hand-checkable examples.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/algorithms2.h"
#include "graph/generators.h"

namespace sa::graph {
namespace {

class Algorithms2Test : public ::testing::Test {
 protected:
  Algorithms2Test()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}) {}

  SmartCsrGraph Smart(const CsrGraph& csr, bool compress = false) {
    SmartGraphOptions options;
    options.compress_indexes = compress;
    options.compress_edges = compress;
    return SmartCsrGraph(csr, options, topo_, pool_);
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
};

// ---- BFS ----

TEST_F(Algorithms2Test, BfsHandExample) {
  // 0 -> 1 -> 2 -> 3, plus shortcut 0 -> 2; vertex 4 unreachable.
  const CsrGraph g = CsrGraph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  const auto levels = BfsLevels(g, 0);
  EXPECT_EQ(levels, (std::vector<uint64_t>{0, 1, 1, 2, kUnreachable}));
}

TEST_F(Algorithms2Test, BfsSmartMatchesReference) {
  const CsrGraph csr = PowerLawGraph(3000, 15'000, 0.5, 31);
  const auto want = BfsLevels(csr, 0);
  for (const bool compress : {false, true}) {
    const SmartCsrGraph g = Smart(csr, compress);
    const auto got = BfsLevelsSmart(pool_, g, 0, topo_);
    ASSERT_EQ(got, want) << "compress=" << compress;
  }
}

TEST_F(Algorithms2Test, BfsFromIsolatedSource) {
  const CsrGraph csr = CsrGraph::FromEdges(3, {{1, 2}});
  const auto want = BfsLevels(csr, 0);
  EXPECT_EQ(want[0], 0u);
  EXPECT_EQ(want[1], kUnreachable);
  const SmartCsrGraph g = Smart(csr);
  EXPECT_EQ(BfsLevelsSmart(pool_, g, 0, topo_), want);
}

TEST_F(Algorithms2Test, BfsLevelsAreConsistentWithEdges) {
  // Property: along any edge, levels differ by at most 1 downward
  // (level[u] <= level[v] + 1 for reachable v).
  const CsrGraph csr = UniformRandomGraph(2000, 4, 17);
  const auto levels = BfsLevels(csr, 42);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (levels[v] == kUnreachable) {
      continue;
    }
    for (EdgeId e = csr.begin()[v]; e < csr.begin()[v + 1]; ++e) {
      EXPECT_LE(levels[csr.edge()[e]], levels[v] + 1);
    }
  }
}

// ---- Connected components ----

TEST_F(Algorithms2Test, ComponentsHandExample) {
  // Two components: {0,1,2} (0->1, 2->1 counts undirected) and {3,4}.
  const CsrGraph g = CsrGraph::FromEdges(5, {{0, 1}, {2, 1}, {4, 3}});
  const auto labels = ConnectedComponents(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[0], 0u);  // labels are component minima
  EXPECT_EQ(labels[3], 3u);
}

TEST_F(Algorithms2Test, ComponentsSmartMatchesReference) {
  const CsrGraph csr = UniformRandomGraph(2500, 1, 77);  // sparse: many components
  const auto want = ConnectedComponents(csr);
  for (const bool compress : {false, true}) {
    const SmartCsrGraph g = Smart(csr, compress);
    ASSERT_EQ(ConnectedComponentsSmart(pool_, g, topo_), want) << "compress=" << compress;
  }
}

TEST_F(Algorithms2Test, ComponentCountMatchesBfsReachability) {
  // Property: two vertices share a label iff they are mutually reachable in
  // the undirected view. Spot-check via distinct label count vs a union of
  // BFS sweeps is heavy; instead assert labels are component minima and
  // edges never cross labels.
  const CsrGraph csr = UniformRandomGraph(1500, 2, 5);
  const auto labels = ConnectedComponents(csr);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_LE(labels[v], v);
    for (EdgeId e = csr.begin()[v]; e < csr.begin()[v + 1]; ++e) {
      EXPECT_EQ(labels[v], labels[csr.edge()[e]]);
    }
  }
}

// ---- Triangle counting ----

TEST_F(Algorithms2Test, TrianglesHandExamples) {
  // A single directed triangle.
  EXPECT_EQ(CountTriangles(CsrGraph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}})), 1u);
  // Direction must not matter.
  EXPECT_EQ(CountTriangles(CsrGraph::FromEdges(3, {{0, 1}, {2, 1}, {2, 0}})), 1u);
  // A 4-clique has 4 triangles.
  EXPECT_EQ(CountTriangles(CsrGraph::FromEdges(
                4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})),
            4u);
  // Parallel edges and self-loops add nothing.
  EXPECT_EQ(CountTriangles(CsrGraph::FromEdges(
                3, {{0, 1}, {0, 1}, {1, 2}, {2, 0}, {1, 1}})),
            1u);
  // A path has none.
  EXPECT_EQ(CountTriangles(CsrGraph::FromEdges(3, {{0, 1}, {1, 2}})), 0u);
}

TEST_F(Algorithms2Test, TrianglesSmartMatchesReference) {
  const CsrGraph csr = PowerLawGraph(800, 8000, 0.5, 3);
  const uint64_t want = CountTriangles(csr);
  EXPECT_GT(want, 0u);  // power-law graphs are triangle-rich
  for (const bool compress : {false, true}) {
    const SmartCsrGraph g = Smart(csr, compress);
    EXPECT_EQ(CountTrianglesSmart(pool_, g), want) << "compress=" << compress;
  }
}

TEST_F(Algorithms2Test, TrianglesAcrossPlacements) {
  const CsrGraph csr = UniformRandomGraph(500, 6, 9);
  const uint64_t want = CountTriangles(csr);
  for (const auto& placement :
       {smart::PlacementSpec::SingleSocket(1), smart::PlacementSpec::Replicated()}) {
    SmartGraphOptions options;
    options.placement = placement;
    options.compress_indexes = true;
    options.compress_edges = true;
    SmartCsrGraph g(csr, options, topo_, pool_);
    EXPECT_EQ(CountTrianglesSmart(pool_, g), want) << ToString(placement);
  }
}

}  // namespace
}  // namespace sa::graph
