#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "rts/worker_pool.h"

namespace sa::rts {
namespace {

WorkerPool::Options Unpinned(int threads) {
  WorkerPool::Options o;
  o.num_threads = threads;
  o.pin_threads = false;
  return o;
}

TEST(WorkerPoolTest, DefaultSizeMatchesTopology) {
  const auto topo = platform::Topology::Synthetic(2, 4);
  WorkerPool pool(topo, Unpinned(0));
  EXPECT_EQ(pool.num_workers(), 8);
  EXPECT_EQ(pool.num_sockets(), 2);
  EXPECT_EQ(pool.workers_per_socket()[0], 4);
  EXPECT_EQ(pool.workers_per_socket()[1], 4);
}

TEST(WorkerPoolTest, WorkersFillSocketsEvenly) {
  const auto topo = platform::Topology::Synthetic(2, 4);
  WorkerPool pool(topo, Unpinned(4));
  // Socket-major interleaving: with 4 workers on 2 sockets, 2 per socket.
  EXPECT_EQ(pool.workers_per_socket()[0], 2);
  EXPECT_EQ(pool.workers_per_socket()[1], 2);
}

TEST(WorkerPoolTest, RunOnAllReachesEveryWorkerOnce) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  WorkerPool pool(topo, Unpinned(4));
  std::vector<std::atomic<int>> hits(4);
  pool.RunOnAll([&](int w) { ++hits[w]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPoolTest, SequentialRegionsReuseWorkers) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  WorkerPool pool(topo, Unpinned(2));
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunOnAll([&](int) { ++total; });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(WorkerPoolTest, WorkerSocketAssignmentIsConsistent) {
  const auto topo = platform::Topology::Synthetic(2, 3);
  WorkerPool pool(topo, Unpinned(6));
  int per_socket[2] = {0, 0};
  for (int w = 0; w < pool.num_workers(); ++w) {
    const int s = pool.worker_socket(w);
    ASSERT_TRUE(s == 0 || s == 1);
    ++per_socket[s];
  }
  EXPECT_EQ(per_socket[0], 3);
  EXPECT_EQ(per_socket[1], 3);
}

TEST(WorkerPoolTest, HostPoolRunsPinned) {
  // On the host topology pinning is attempted; the pool must still work
  // whether or not the affinity call succeeds.
  const auto topo = platform::Topology::Host();
  WorkerPool pool(topo);
  std::atomic<int> count{0};
  pool.RunOnAll([&](int) { ++count; });
  EXPECT_EQ(count.load(), pool.num_workers());
}

}  // namespace
}  // namespace sa::rts
