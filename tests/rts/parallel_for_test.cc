#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "rts/parallel_for.h"

namespace sa::rts {
namespace {

class ParallelForTest : public ::testing::TestWithParam<Scheduling> {
 protected:
  ParallelForTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, WorkerPool::Options{.num_threads = 4, .pin_threads = false}) {}

  platform::Topology topo_;
  WorkerPool pool_;
};

TEST_P(ParallelForTest, EveryIterationRunsExactlyOnce) {
  constexpr uint64_t kN = 100'000;
  std::vector<std::atomic<uint8_t>> seen(kN);
  ParallelFor(pool_, 0, kN, 1024,
              [&](int, uint64_t b, uint64_t e) {
                for (uint64_t i = b; i < e; ++i) {
                  seen[i].fetch_add(1);
                }
              },
              GetParam());
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "iteration " << i;
  }
}

TEST_P(ParallelForTest, NonZeroBeginHandled) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(pool_, 500, 1500, 64,
              [&](int, uint64_t b, uint64_t e) {
                uint64_t local = 0;
                for (uint64_t i = b; i < e; ++i) {
                  local += i;
                }
                sum += local;
              },
              GetParam());
  uint64_t want = 0;
  for (uint64_t i = 500; i < 1500; ++i) {
    want += i;
  }
  EXPECT_EQ(sum.load(), want);
}

TEST_P(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  ParallelFor(pool_, 10, 10, 64, [&](int, uint64_t, uint64_t) { ++calls; }, GetParam());
  ParallelFor(pool_, 10, 5, 64, [&](int, uint64_t, uint64_t) { ++calls; }, GetParam());
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(ParallelForTest, GrainLargerThanRange) {
  std::atomic<uint64_t> iters{0};
  ParallelFor(pool_, 0, 100, 1 << 20,
              [&](int, uint64_t b, uint64_t e) { iters += e - b; }, GetParam());
  EXPECT_EQ(iters.load(), 100u);
}

TEST_P(ParallelForTest, ReduceMatchesSerial) {
  constexpr uint64_t kN = 200'000;
  const uint64_t got = ParallelReduce<uint64_t>(
      pool_, 0, kN, 1 << 12,
      [](int, uint64_t b, uint64_t e) {
        uint64_t s = 0;
        for (uint64_t i = b; i < e; ++i) {
          s += i * 3 + 1;
        }
        return s;
      },
      GetParam());
  uint64_t want = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    want += i * 3 + 1;
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulings, ParallelForTest,
                         ::testing::Values(Scheduling::kDynamicGlobal,
                                           Scheduling::kDynamicPerSocket, Scheduling::kStatic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheduling::kDynamicGlobal:
                               return "DynamicGlobal";
                             case Scheduling::kDynamicPerSocket:
                               return "DynamicPerSocket";
                             case Scheduling::kStatic:
                               return "Static";
                           }
                           return "Unknown";
                         });

TEST(ParallelForStatsTest, StatsAccountForAllIterations) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  WorkerPool pool(topo, WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  LoopStats stats;
  constexpr uint64_t kN = 64 * 1024;
  ParallelFor(pool, 0, kN, 1024, [](int, uint64_t, uint64_t) {},
              Scheduling::kDynamicPerSocket, &stats);
  EXPECT_EQ(std::accumulate(stats.iters_per_worker.begin(), stats.iters_per_worker.end(),
                            uint64_t{0}),
            kN);
  const uint64_t batches = std::accumulate(stats.batches_per_worker.begin(),
                                           stats.batches_per_worker.end(), uint64_t{0});
  EXPECT_EQ(batches, kN / 1024);
}

TEST(ParallelForStatsTest, DynamicDistributionUsesMultipleWorkers) {
  // On a single-CPU host one worker can drain every batch before the others
  // are scheduled, so overlap is forced: the first worker to claim a batch
  // parks until a second worker has claimed one too (bounded wait).
  const auto topo = platform::Topology::Synthetic(2, 2);
  WorkerPool pool(topo, WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  LoopStats stats;
  std::atomic<int> claimers{0};
  std::atomic<bool> done_waiting{false};
  ParallelFor(pool, 0, 1 << 16, 256,
              [&](int, uint64_t, uint64_t) {
                claimers.fetch_add(1);
                if (!done_waiting.exchange(true)) {
                  // First claimer: yield until someone else shows up.
                  const auto deadline =
                      std::chrono::steady_clock::now() + std::chrono::seconds(5);
                  while (claimers.load() < 2 &&
                         std::chrono::steady_clock::now() < deadline) {
                    std::this_thread::yield();
                  }
                }
              },
              Scheduling::kDynamicGlobal, &stats);
  int active_workers = 0;
  for (const uint64_t n : stats.batches_per_worker) {
    active_workers += n > 0 ? 1 : 0;
  }
  EXPECT_GE(active_workers, 2);
}

TEST(ParallelForStatsTest, WorkersNeverReturnHomeAfterStealing) {
  // Deterministic home-first property: each worker drains its own socket's
  // sub-range before stealing, so once a worker claims a foreign batch it
  // never claims a home batch again — independent of host scheduling.
  const auto topo = platform::Topology::Synthetic(2, 1);
  WorkerPool pool(topo, WorkerPool::Options{.num_threads = 2, .pin_threads = false});
  constexpr uint64_t kN = 64 * 1024;
  std::vector<std::vector<uint64_t>> order(pool.num_workers());
  ParallelFor(pool, 0, kN, 1024,
              [&](int worker, uint64_t b, uint64_t) { order[worker].push_back(b); },
              Scheduling::kDynamicPerSocket);
  for (int w = 0; w < pool.num_workers(); ++w) {
    const int home = pool.worker_socket(w);
    // Balanced pool: region split at kN/2; home region of socket s is half s.
    bool stole = false;
    for (const uint64_t b : order[w]) {
      const bool is_home = (home == 0) == (b < kN / 2);
      if (!is_home) {
        stole = true;
      } else {
        EXPECT_FALSE(stole) << "worker " << w << " claimed home batch " << b
                            << " after stealing";
      }
    }
  }
}

TEST(ParallelForDeathTest, RejectsZeroGrain) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  WorkerPool pool(topo, WorkerPool::Options{.num_threads = 2, .pin_threads = false});
  EXPECT_DEATH(ParallelFor(pool, 0, 10, 0, [](int, uint64_t, uint64_t) {}), "grain");
}

}  // namespace
}  // namespace sa::rts
