// Properties of the max-min fair fluid simulator.
#include <gtest/gtest.h>

#include "sim/fluid.h"

namespace sa::sim {
namespace {

TEST(FluidTest, SingleFlowSaturatesItsBottleneck) {
  FluidNetwork net;
  const ResourceId r = net.AddResource("mem", 100.0);
  Flow f;
  f.demand = {{r, 2.0}};  // 2 units of mem per work unit
  const auto rates = net.MaxMinRates({f});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
}

TEST(FluidTest, EqualFlowsShareEqually) {
  FluidNetwork net;
  const ResourceId r = net.AddResource("mem", 90.0);
  Flow f;
  f.demand = {{r, 1.0}};
  const auto rates = net.MaxMinRates({f, f, f});
  for (const double rate : rates) {
    EXPECT_DOUBLE_EQ(rate, 30.0);
  }
}

TEST(FluidTest, MaxMinProtectsLightFlows) {
  // Flow A is capped low; flow B should take the slack (max-min fairness).
  FluidNetwork net;
  const ResourceId r = net.AddResource("mem", 100.0);
  Flow a;
  a.demand = {{r, 1.0}};
  a.rate_cap = 10.0;
  Flow b;
  b.demand = {{r, 1.0}};
  const auto rates = net.MaxMinRates({a, b});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);
}

TEST(FluidTest, MultiResourceFlowLimitedByScarcest) {
  FluidNetwork net;
  const ResourceId cpu = net.AddResource("cpu", 1000.0);
  const ResourceId link = net.AddResource("link", 10.0);
  Flow f;
  f.demand = {{cpu, 1.0}, {link, 1.0}};
  const auto rates = net.MaxMinRates({f});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);  // the link binds
}

TEST(FluidTest, FrozenFlowReleasesOtherResources) {
  // A is bound by the link; B only uses cpu and should get everything the
  // cpu has left after A's small share.
  FluidNetwork net;
  const ResourceId cpu = net.AddResource("cpu", 100.0);
  const ResourceId link = net.AddResource("link", 10.0);
  Flow a;
  a.demand = {{cpu, 1.0}, {link, 1.0}};
  Flow b;
  b.demand = {{cpu, 1.0}};
  const auto rates = net.MaxMinRates({a, b});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);
}

TEST(FluidTest, DuplicateDemandEntriesCoalesce) {
  FluidNetwork net;
  const ResourceId r = net.AddResource("mem", 100.0);
  Flow f;
  f.demand = {{r, 1.0}, {r, 1.0}};  // same as a single demand of 2
  const auto rates = net.MaxMinRates({f});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
}

TEST(FluidTest, ZeroCapacityResourceStallsItsUsers) {
  FluidNetwork net;
  const ResourceId dead = net.AddResource("dead", 0.0);
  const ResourceId ok = net.AddResource("ok", 100.0);
  Flow blocked;
  blocked.demand = {{dead, 1.0}, {ok, 1.0}};
  Flow fine;
  fine.demand = {{ok, 1.0}};
  const auto rates = net.MaxMinRates({blocked, fine});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(FluidTest, SharedPoolAccountsTimeAndUsage) {
  FluidNetwork net;
  const ResourceId mem = net.AddResource("mem", 50.0);
  Flow f;
  f.demand = {{mem, 2.0}};
  const auto res = net.RunSharedPool({f, f}, 1000.0);
  // Combined rate = 25 units/s; 1000 units -> 40 s.
  EXPECT_DOUBLE_EQ(res.seconds, 40.0);
  EXPECT_DOUBLE_EQ(res.flow_work[0] + res.flow_work[1], 1000.0);
  EXPECT_DOUBLE_EQ(res.resource_usage[mem], 2000.0);  // 2 per unit
  EXPECT_NEAR(res.resource_utilization[mem], 1.0, 1e-9);
}

TEST(FluidTest, SharedPoolUnderCapsLeavesUtilizationLow) {
  FluidNetwork net;
  const ResourceId mem = net.AddResource("mem", 100.0);
  Flow f;
  f.demand = {{mem, 1.0}};
  f.rate_cap = 10.0;
  const auto res = net.RunSharedPool({f}, 100.0);
  EXPECT_DOUBLE_EQ(res.seconds, 10.0);
  EXPECT_NEAR(res.resource_utilization[mem], 0.1, 1e-9);
}

TEST(FluidTest, IndependentFlowsFinishInSizeOrder) {
  FluidNetwork net;
  const ResourceId mem = net.AddResource("mem", 10.0);
  Flow small;
  small.demand = {{mem, 1.0}};
  small.work = 10.0;
  Flow big;
  big.demand = {{mem, 1.0}};
  big.work = 40.0;
  const auto res = net.RunIndependent({small, big});
  // Phase 1: both at 5/s until small finishes at t=2; big then runs at 10/s
  // for remaining 30 units -> 3 s more. Total 5 s.
  EXPECT_NEAR(res.seconds, 5.0, 1e-9);
  EXPECT_NEAR(res.flow_work[0], 10.0, 1e-9);
  EXPECT_NEAR(res.flow_work[1], 40.0, 1e-9);
  EXPECT_NEAR(res.resource_usage[mem], 50.0, 1e-9);
}

TEST(FluidTest, IndependentHandlesEmptyAndZeroWork) {
  FluidNetwork net;
  net.AddResource("mem", 10.0);
  const auto res = net.RunIndependent({});
  EXPECT_DOUBLE_EQ(res.seconds, 0.0);
}

TEST(FluidDeathTest, UnboundedFlowRejected) {
  FluidNetwork net;
  net.AddResource("mem", 10.0);
  Flow f;  // no demand, no cap
  EXPECT_DEATH(net.MaxMinRates({f}), "unbounded");
}

TEST(FluidDeathTest, StalledPoolRejected) {
  FluidNetwork net;
  const ResourceId dead = net.AddResource("dead", 0.0);
  Flow f;
  f.demand = {{dead, 1.0}};
  EXPECT_DEATH(net.RunSharedPool({f}, 100.0), "progress");
}

// Conservation: usage on every resource equals the sum over flows of
// rate * demand * time, and never exceeds capacity * time.
TEST(FluidTest, UsageNeverExceedsCapacity) {
  FluidNetwork net;
  const ResourceId a = net.AddResource("a", 33.0);
  const ResourceId b = net.AddResource("b", 71.0);
  std::vector<Flow> flows;
  for (int i = 0; i < 5; ++i) {
    Flow f;
    f.demand = {{a, 1.0 + i * 0.3}, {b, 2.0 - i * 0.2}};
    flows.push_back(f);
  }
  const auto res = net.RunSharedPool(flows, 500.0);
  EXPECT_LE(res.resource_usage[a], 33.0 * res.seconds * (1 + 1e-9));
  EXPECT_LE(res.resource_usage[b], 71.0 * res.seconds * (1 + 1e-9));
  // At least one resource is saturated (otherwise rates could grow).
  EXPECT_GT(std::max(res.resource_utilization[a], res.resource_utilization[b]), 0.999);
}

}  // namespace
}  // namespace sa::sim
