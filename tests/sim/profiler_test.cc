// The profiler must reproduce the analytic demand splits the workload
// models assume — real placement bookkeeping vs SplitBytesForPlacement.
#include <gtest/gtest.h>

#include "sim/profiler.h"
#include "sim/workloads.h"

namespace sa::sim {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : topo_(platform::Topology::Synthetic(2, 2)) {}

  // Analytic split for comparison.
  std::vector<double> Analytic(const smart::PlacementSpec& placement, int team,
                               double bytes_per_elem) {
    return SplitBytesForPlacement(placement, bytes_per_elem, team, 2, 0.0);
  }

  platform::Topology topo_;
  static constexpr uint64_t kN = 1 << 16;  // 64Ki elements -> many pages
};

TEST_F(ProfilerTest, ScanProfileMatchesAnalyticSplits) {
  for (const auto& placement :
       {smart::PlacementSpec::SingleSocket(1), smart::PlacementSpec::Interleaved(),
        smart::PlacementSpec::Replicated()}) {
    for (const uint32_t bits : {64u, 33u}) {
      const auto array = smart::SmartArray::Allocate(kN, placement, bits, topo_);
      const ScanProfile profile = ProfileScan(*array);
      for (int team = 0; team < 2; ++team) {
        const auto want = Analytic(placement, team, bits / 8.0);
        double total = 0.0;
        for (int s = 0; s < 2; ++s) {
          // Page-boundary effects allow a few percent of drift.
          EXPECT_NEAR(profile.bytes_from[team][s], want[s], 0.05 * bits / 8.0)
              << ToString(placement) << " bits=" << bits << " team=" << team << " s=" << s;
          total += profile.bytes_from[team][s];
        }
        EXPECT_NEAR(total, bits / 8.0, 1e-9);  // conservation
      }
    }
  }
}

TEST_F(ProfilerTest, RandomProfileMatchesAnalyticSplits) {
  for (const auto& placement :
       {smart::PlacementSpec::Interleaved(), smart::PlacementSpec::Replicated(),
        smart::PlacementSpec::SingleSocket(0)}) {
    const auto array = smart::SmartArray::Allocate(kN, placement, 64, topo_);
    const ScanProfile profile = ProfileRandomAccess(*array, 200'000, 99);
    for (int team = 0; team < 2; ++team) {
      const auto want = Analytic(placement, team, 64.0);
      for (int s = 0; s < 2; ++s) {
        EXPECT_NEAR(profile.bytes_from[team][s], want[s], 2.0)  // sampling noise
            << ToString(placement) << " team=" << team << " s=" << s;
      }
    }
  }
}

TEST_F(ProfilerTest, ProfileFeedsTheMachineModelDirectly) {
  // End-to-end: profile a real replicated array, build ThreadWork from the
  // measured demands, and confirm the model reports an all-local run.
  const auto array =
      smart::SmartArray::Allocate(kN, smart::PlacementSpec::Replicated(), 64, topo_);
  const ScanProfile profile = ProfileScan(*array);

  const MachineModel machine(MachineSpec::OracleX5_8Core());
  std::vector<ThreadWork> threads;
  for (int team = 0; team < 2; ++team) {
    ThreadWork tw;
    tw.cycles_per_unit = 1.0;
    tw.instructions_per_unit = 2.0;
    tw.bytes_from_socket = profile.bytes_from[team];
    auto team_threads = machine.SocketThreads(tw, team);
    threads.insert(threads.end(), team_threads.begin(), team_threads.end());
  }
  const RunReport report = machine.RunSharedPool(threads, 1e9);
  EXPECT_NEAR(report.total_mem_gbps, 98.6, 1.0);  // both channels, no interconnect
  EXPECT_NEAR(report.ic_gbps[0][1] + report.ic_gbps[1][0], 0.0, 1e-9);
}

TEST_F(ProfilerTest, OsDefaultFirstTouchLandsOnHomeSocket) {
  const auto array =
      smart::SmartArray::Allocate(kN, smart::PlacementSpec::OsDefault(1), 64, topo_);
  const ScanProfile profile = ProfileScan(*array);
  // Single-threaded init on socket 1: everything served by socket 1.
  EXPECT_NEAR(profile.bytes_from[0][1], 8.0, 1e-9);
  EXPECT_NEAR(profile.bytes_from[1][1], 8.0, 1e-9);
}

}  // namespace
}  // namespace sa::sim
