#include <gtest/gtest.h>

#include "sim/machine_model.h"

namespace sa::sim {
namespace {

MachineSpec TinySpec() {
  MachineSpec spec;
  spec.name = "tiny";
  spec.sockets = 2;
  spec.cores_per_socket = 2;
  spec.threads_per_core = 1;
  spec.clock_ghz = 1.0;  // 1e9 cycles/s per core
  spec.local_bw_gbps = 10.0;
  spec.remote_bw_gbps = 2.0;
  spec.ic_stream_efficiency = 1.0;
  spec.mem_stream_efficiency = 1.0;
  return spec;
}

TEST(MachineModelTest, BuildsExpectedResources) {
  MachineModel m(TinySpec());
  // 4 cores + 2 memory channels + 2 interconnect directions.
  EXPECT_EQ(m.network().num_resources(), 8);
  EXPECT_DOUBLE_EQ(m.network().resource_capacity(m.core_resource(0, 0)), 1e9);
  EXPECT_DOUBLE_EQ(m.network().resource_capacity(m.mem_resource(1)), 10e9);
  EXPECT_DOUBLE_EQ(m.network().resource_capacity(m.ic_resource(0, 1)), 2e9);
}

TEST(MachineModelTest, LocalReadTouchesOnlyLocalChannel) {
  MachineModel m(TinySpec());
  ThreadWork tw;
  tw.socket = 0;
  tw.core = 0;
  tw.cycles_per_unit = 1.0;
  tw.bytes_from_socket = {8.0, 0.0};
  const Flow f = m.MakeFlow(tw);
  // cycles + mem.s0 only; no interconnect.
  for (const auto& [r, d] : f.demand) {
    EXPECT_NE(r, m.ic_resource(0, 1));
    EXPECT_NE(r, m.ic_resource(1, 0));
    (void)d;
  }
}

TEST(MachineModelTest, RemoteReadUsesIncomingDirection) {
  MachineModel m(TinySpec());
  ThreadWork tw;
  tw.socket = 0;
  tw.core = 0;
  tw.cycles_per_unit = 1.0;
  tw.bytes_from_socket = {0.0, 8.0};  // reads socket 1's memory
  const Flow f = m.MakeFlow(tw);
  bool uses_1to0 = false;
  bool uses_0to1 = false;
  for (const auto& [r, d] : f.demand) {
    uses_1to0 |= r == m.ic_resource(1, 0) && d > 0;
    uses_0to1 |= r == m.ic_resource(0, 1) && d > 0;
  }
  EXPECT_TRUE(uses_1to0);   // data flows remote -> local
  EXPECT_FALSE(uses_0to1);
}

TEST(MachineModelTest, RemoteWriteChargesTargetChannelOnly) {
  // Posted writes consume the target socket's memory channel but do not
  // rate-couple the writer to the interconnect (see MakeFlow).
  MachineModel m(TinySpec());
  ThreadWork tw;
  tw.socket = 0;
  tw.core = 0;
  tw.cycles_per_unit = 1.0;
  tw.bytes_to_socket = {0.0, 8.0};  // writes to socket 1's memory
  const Flow f = m.MakeFlow(tw);
  bool uses_mem1 = false;
  for (const auto& [r, d] : f.demand) {
    EXPECT_NE(r, m.ic_resource(0, 1));
    EXPECT_NE(r, m.ic_resource(1, 0));
    uses_mem1 |= r == m.mem_resource(1) && d > 0;
  }
  EXPECT_TRUE(uses_mem1);
}

TEST(MachineModelTest, RandomAccessGetsLatencyCap) {
  MachineSpec spec = TinySpec();
  spec.local_latency_ns = 100.0;
  spec.mlp_random = 10.0;
  MachineModel m(spec);
  ThreadWork tw;
  tw.socket = 0;
  tw.core = 0;
  tw.cycles_per_unit = 1.0;
  tw.random_accesses_per_unit = 1.0;
  tw.random_remote_fraction = 0.0;
  const Flow f = m.MakeFlow(tw);
  // 10 outstanding / 100ns = 1e8 accesses/s.
  EXPECT_NEAR(f.rate_cap, 1e8, 1e0);
}

TEST(MachineModelTest, CpuBoundRunMatchesHandComputation) {
  MachineModel m(TinySpec());
  ThreadWork proto;
  proto.cycles_per_unit = 10.0;
  proto.instructions_per_unit = 20.0;
  const auto threads = m.AllThreads(proto);  // 4 threads, one per core
  ASSERT_EQ(threads.size(), 4u);
  const RunReport r = m.RunSharedPool(threads, 4e8);
  // Each core does 1e9/10 = 1e8 units/s; 4 cores -> 4e8/s; 1 second total.
  EXPECT_NEAR(r.seconds, 1.0, 1e-9);
  EXPECT_NEAR(r.total_instructions, 8e9, 1e3);
  EXPECT_NEAR(r.cycles_utilization[0], 1.0, 1e-9);
}

TEST(MachineModelTest, MemBoundRunReportsBandwidth) {
  MachineModel m(TinySpec());
  ThreadWork proto;
  proto.cycles_per_unit = 0.1;  // negligible CPU
  proto.instructions_per_unit = 1.0;
  proto.bytes_from_socket = {8.0, 0.0};
  const auto threads = m.SocketThreads(proto, 0);
  const RunReport r = m.RunSharedPool(threads, 10e9);
  // 10 GB/s / 8 B/unit = 1.25e9 units/s -> 8 s.
  EXPECT_NEAR(r.seconds, 8.0, 1e-6);
  EXPECT_NEAR(r.mem_gbps[0], 10.0, 1e-6);
  EXPECT_NEAR(r.mem_gbps[1], 0.0, 1e-9);
  EXPECT_NEAR(r.mem_utilization[0], 1.0, 1e-9);
}

TEST(MachineModelTest, SocketThreadsHonorTopology) {
  MachineModel m(TinySpec());
  ThreadWork proto;
  proto.cycles_per_unit = 1.0;
  const auto team = m.SocketThreads(proto, 1);
  ASSERT_EQ(team.size(), 2u);
  for (const auto& tw : team) {
    EXPECT_EQ(tw.socket, 1);
  }
  EXPECT_NE(team[0].core, team[1].core);
}

TEST(MachineModelDeathTest, RejectsBadSocketIndices) {
  MachineModel m(TinySpec());
  ThreadWork tw;
  tw.socket = 5;
  tw.cycles_per_unit = 1.0;
  EXPECT_DEATH(m.MakeFlow(tw), "");
}

}  // namespace
}  // namespace sa::sim
