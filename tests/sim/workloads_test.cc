// Workload-model tests: the simulated experiments must reproduce the
// qualitative results of the paper's evaluation (who wins, where the
// crossovers are) on the Table 1 machine presets. The quantitative
// comparison lives in EXPERIMENTS.md via the bench binaries.
#include <gtest/gtest.h>

#include "sim/mlc.h"
#include "sim/workloads.h"

namespace sa::sim {
namespace {

using smart::PlacementSpec;

double AggSeconds(const MachineModel& m, PlacementSpec placement, uint32_t bits,
                  bool java = false) {
  AggregationConfig c;
  c.placement = placement;
  c.bits = bits;
  c.java = java;
  return SimulateAggregation(m, c).seconds;
}

class AggregationShape : public ::testing::Test {
 protected:
  MachineModel small_{MachineSpec::OracleX5_8Core()};
  MachineModel large_{MachineSpec::OracleX5_18Core()};
};

TEST_F(AggregationShape, EightCore64BitPlacementOrdering) {
  // Fig. 10, 8-core machine, uncompressed: replicated < single < interleaved
  // (the single QPI link makes interleaving worse than one socket's memory).
  const double single = AggSeconds(small_, PlacementSpec::SingleSocket(0), 64);
  const double interleaved = AggSeconds(small_, PlacementSpec::Interleaved(), 64);
  const double replicated = AggSeconds(small_, PlacementSpec::Replicated(), 64);
  EXPECT_LT(replicated, single);
  EXPECT_LT(single, interleaved);
  // "Reducing the time by 2x" (§5.1): replication vs single socket.
  EXPECT_NEAR(single / replicated, 2.0, 0.35);
}

TEST_F(AggregationShape, EighteenCore64BitPlacementOrdering) {
  // Fig. 2 / Fig. 10, 18-core: interleaving beats single socket (3 QPI
  // links), replication is a slight further improvement.
  const double single = AggSeconds(large_, PlacementSpec::SingleSocket(0), 64);
  const double interleaved = AggSeconds(large_, PlacementSpec::Interleaved(), 64);
  const double replicated = AggSeconds(large_, PlacementSpec::Replicated(), 64);
  EXPECT_LT(interleaved, single);
  EXPECT_LE(replicated, interleaved);
  EXPECT_GT(replicated, interleaved * 0.7);  // "only slightly improves"
}

TEST_F(AggregationShape, Fig2OperatingPoints) {
  // Fig. 2 magnitudes on the 18-core machine (paper: 201 / 122 / 109 / 62 ms).
  const double single = AggSeconds(large_, PlacementSpec::SingleSocket(0), 64);
  const double interleaved = AggSeconds(large_, PlacementSpec::Interleaved(), 64);
  const double replicated = AggSeconds(large_, PlacementSpec::Replicated(), 64);
  const double repl_compressed = AggSeconds(large_, PlacementSpec::Replicated(), 33);
  EXPECT_NEAR(single, 0.201, 0.05);
  EXPECT_NEAR(interleaved, 0.122, 0.04);
  EXPECT_NEAR(replicated, 0.109, 0.03);
  EXPECT_NEAR(repl_compressed, 0.062, 0.025);
}

TEST_F(AggregationShape, Fig2BandwidthShape) {
  AggregationConfig c;
  c.placement = PlacementSpec::SingleSocket(0);
  const RunReport single = SimulateAggregation(large_, c);
  // Single socket saturates one channel: ~43.8 GB/s (Fig. 2a reports 43).
  EXPECT_NEAR(single.total_mem_gbps, 43.8, 2.0);
  c.placement = PlacementSpec::Replicated();
  const RunReport repl = SimulateAggregation(large_, c);
  EXPECT_GT(repl.total_mem_gbps, 75.0);  // both sockets' channels busy
}

TEST_F(AggregationShape, CompressionHelpsInterleavedOnEightCore) {
  // §5.1: "bit compression is advantageous for interleaved placements where
  // the compression allows more data to be passed through the low bandwidth
  // QPI link."
  const double u = AggSeconds(small_, PlacementSpec::Interleaved(), 64);
  const double c = AggSeconds(small_, PlacementSpec::Interleaved(), 33);
  EXPECT_LT(c, u);
}

TEST_F(AggregationShape, CompressionHurtsReplicatedOnEightCore) {
  // §5.1: "for the single socket and replicated cases compression hurts
  // performance because the processors cannot saturate the sockets' memory
  // bandwidth any more due to the additional CPU load."
  const double u = AggSeconds(small_, PlacementSpec::Replicated(), 64);
  const double c = AggSeconds(small_, PlacementSpec::Replicated(), 33);
  EXPECT_GT(c, u);
  const double us = AggSeconds(small_, PlacementSpec::SingleSocket(0), 64);
  const double cs = AggSeconds(small_, PlacementSpec::SingleSocket(0), 33);
  EXPECT_GT(cs, us * 0.95);  // at best marginal
}

TEST_F(AggregationShape, CompressionHelpsEverywhereOnEighteenCore) {
  // §5.1: "the 18 cores benefit from compression for all memory placements
  // despite the additional CPU load."
  for (const auto& placement :
       {PlacementSpec::SingleSocket(0), PlacementSpec::Interleaved(),
        PlacementSpec::Replicated()}) {
    const double u = AggSeconds(large_, placement, 64);
    const double c = AggSeconds(large_, placement, 33);
    EXPECT_LT(c, u * 1.02) << ToString(placement);
  }
}

TEST_F(AggregationShape, CompressionUpTo4xOnOsDefault) {
  // §5.1: "bit compression can reduce the time by up to 4x for the default
  // OS data placement" (single-thread first touch -> one socket) on the
  // 18-core machine.
  const double u = AggSeconds(large_, PlacementSpec::OsDefault(), 64);
  const double c = AggSeconds(large_, PlacementSpec::OsDefault(), 10);
  EXPECT_GT(u / c, 3.0);
  EXPECT_LT(u / c, 7.0);
}

TEST_F(AggregationShape, InstructionsGrowWithCompression) {
  AggregationConfig u;
  u.placement = PlacementSpec::Replicated();
  u.bits = 64;
  AggregationConfig c = u;
  c.bits = 33;
  const double iu = SimulateAggregation(large_, u).total_instructions;
  const double ic = SimulateAggregation(large_, c).total_instructions;
  EXPECT_GT(ic, 3.0 * iu);  // Fig. 10's instruction panels (~5e9 vs ~20e9)
  EXPECT_NEAR(iu, 4e9, 2e9);
  EXPECT_NEAR(ic, 20e9, 8e9);
}

TEST_F(AggregationShape, SpecializedWidthsCostLikeUncompressed) {
  // 32-bit is specialized: no shift/mask work, so instructions stay low.
  AggregationConfig c32;
  c32.placement = PlacementSpec::Replicated();
  c32.bits = 32;
  AggregationConfig c31 = c32;
  c31.bits = 31;
  EXPECT_LT(SimulateAggregation(large_, c32).total_instructions * 2.5,
            SimulateAggregation(large_, c31).total_instructions);
}

TEST_F(AggregationShape, JavaTracksCpp) {
  // §5.1: "the performance of the Java application is generally as good as
  // that of the C++ application."
  for (const uint32_t bits : {64u, 33u}) {
    const double cpp = AggSeconds(large_, PlacementSpec::Replicated(), bits, false);
    const double java = AggSeconds(large_, PlacementSpec::Replicated(), bits, true);
    EXPECT_GE(java, cpp);
    EXPECT_LT(java, cpp * 1.25);
  }
}

TEST_F(AggregationShape, OsDefaultMatchesSingleSocketForSingleThreadInit) {
  // §5.1: single-threaded init -> first-touch == single socket placement.
  const double os_default = AggSeconds(large_, PlacementSpec::OsDefault(), 64);
  const double single = AggSeconds(large_, PlacementSpec::SingleSocket(0), 64);
  EXPECT_NEAR(os_default, single, single * 0.01);
}

// ---------------------------------------------------------------------------

class DegreeShape : public ::testing::Test {
 protected:
  double Run(const MachineModel& m, PlacementSpec placement, uint32_t bits,
             bool original = false) {
    DegreeCentralityConfig c;
    c.placement = placement;
    c.index_bits = bits;
    c.original = original;
    return SimulateDegreeCentrality(m, c).seconds;
  }
  MachineModel small_{MachineSpec::OracleX5_8Core()};
  MachineModel large_{MachineSpec::OracleX5_18Core()};
};

TEST_F(DegreeShape, EightCoreReplicationWins) {
  // Fig. 11, 8-core: "replication outperforms other placements".
  const double repl = Run(small_, PlacementSpec::Replicated(), 64);
  for (const auto& other : {PlacementSpec::SingleSocket(0), PlacementSpec::Interleaved()}) {
    EXPECT_LT(repl, Run(small_, other, 64)) << ToString(other);
  }
  EXPECT_LT(repl, Run(small_, PlacementSpec::Interleaved(), 64, /*original=*/true));
}

TEST_F(DegreeShape, EighteenCoreInterleavedBeatsSingle) {
  // Fig. 11, 18-core: "interleaving is better than the original, OS default
  // and single socket variations, while replication gives a slight further
  // improvement."
  const double single = Run(large_, PlacementSpec::SingleSocket(0), 64);
  const double interleaved = Run(large_, PlacementSpec::Interleaved(), 64);
  const double replicated = Run(large_, PlacementSpec::Replicated(), 64);
  EXPECT_LT(interleaved, single);
  EXPECT_LE(replicated, interleaved);
}

TEST_F(DegreeShape, OriginalSitsBetweenSingleAndInterleaved) {
  // §5.2: multi-threaded init scatters pages, so original/OS-default land
  // between the single-socket and interleaved extremes.
  const double single = Run(small_, PlacementSpec::SingleSocket(0), 64);
  const double interleaved = Run(small_, PlacementSpec::Interleaved(), 64);
  const double original = Run(small_, PlacementSpec::OsDefault(), 64, /*original=*/true);
  const double lo = std::min(single, interleaved);
  const double hi = std::max(single, interleaved);
  EXPECT_GE(original, lo * 0.95);
  EXPECT_LE(original, hi * 1.05);
}

TEST_F(DegreeShape, CompressionImprovesEighteenCore) {
  // Fig. 11, 18-core: 33-bit compression "further improves performance".
  for (const auto& placement : {PlacementSpec::Interleaved(), PlacementSpec::Replicated()}) {
    EXPECT_LT(Run(large_, placement, 33), Run(large_, placement, 64) * 1.02)
        << ToString(placement);
  }
}

// ---------------------------------------------------------------------------

class PageRankShape : public ::testing::Test {
 protected:
  static PageRankConfig Variant(const char* kind, PlacementSpec placement) {
    PageRankConfig c;
    c.placement = placement;
    if (std::string(kind) == "U") {
      c.index_bits = 64;
      c.degree_bits = 64;
      c.edge_bits = 32;
    } else if (std::string(kind) == "32") {
      c.index_bits = 32;
      c.degree_bits = 64;
      c.edge_bits = 32;
    } else if (std::string(kind) == "V") {
      c.index_bits = 31;
      c.degree_bits = 22;
      c.edge_bits = 32;
    } else {  // "V+E"
      c.index_bits = 31;
      c.degree_bits = 22;
      c.edge_bits = 26;
    }
    return c;
  }
  MachineModel small_{MachineSpec::OracleX5_8Core()};
  MachineModel large_{MachineSpec::OracleX5_18Core()};
};

TEST_F(PageRankShape, EightCoreReplicationUpTo2x) {
  // Fig. 1 / Fig. 12: replication improves PageRank by ~2x on the 8-core
  // machine over the interleaved/original placements.
  const double interleaved =
      SimulatePageRank(small_, Variant("U", PlacementSpec::Interleaved())).seconds;
  const double replicated =
      SimulatePageRank(small_, Variant("U", PlacementSpec::Replicated())).seconds;
  EXPECT_GT(interleaved / replicated, 1.7);
}

TEST_F(PageRankShape, EightCoreSingleBeatsInterleaved) {
  // Fig. 12, 8-core: "the single socket bandwidth is higher than ... the
  // interleaved data placements, which are constrained by the limited
  // interconnect bandwidth."
  const double single =
      SimulatePageRank(small_, Variant("U", PlacementSpec::SingleSocket(0))).seconds;
  const double interleaved =
      SimulatePageRank(small_, Variant("U", PlacementSpec::Interleaved())).seconds;
  EXPECT_LT(single, interleaved);
}

TEST_F(PageRankShape, EighteenCoreReplicationMarginal) {
  const double interleaved =
      SimulatePageRank(large_, Variant("U", PlacementSpec::Interleaved())).seconds;
  const double replicated =
      SimulatePageRank(large_, Variant("U", PlacementSpec::Replicated())).seconds;
  EXPECT_LE(replicated, interleaved);
  EXPECT_LT(interleaved / replicated, 1.6);  // "marginally better"
}

TEST_F(PageRankShape, CompressingVerticesBarelyMatters) {
  // §5.2: "bit compressing the vertex and vertex property arrays does not
  // have a significant impact ... PageRank is dominated by the loop over
  // the edges."
  const double u = SimulatePageRank(small_, Variant("U", PlacementSpec::Replicated())).seconds;
  const double v = SimulatePageRank(small_, Variant("V", PlacementSpec::Replicated())).seconds;
  EXPECT_NEAR(v / u, 1.0, 0.15);
}

TEST_F(PageRankShape, CompressingEdgesRaisesCpuLoadOnEightCore) {
  // §5.2: "bit compressing the edges significantly increases the CPU load
  // and generally increases the runtime on the 8-core machine."
  const auto u = SimulatePageRank(small_, Variant("U", PlacementSpec::Replicated()));
  const auto ve = SimulatePageRank(small_, Variant("V+E", PlacementSpec::Replicated()));
  EXPECT_GT(ve.total_instructions, 1.5 * u.total_instructions);
  EXPECT_GT(ve.seconds, u.seconds);
}

TEST_F(PageRankShape, VePlusFootprintSavesAbout21Percent) {
  const auto u = PageRankFootprintBytes(Variant("U", PlacementSpec::Interleaved()));
  const auto ve = PageRankFootprintBytes(Variant("V+E", PlacementSpec::Interleaved()));
  const double saving = 1.0 - static_cast<double>(ve) / static_cast<double>(u);
  EXPECT_NEAR(saving, 0.21, 0.04);  // §5.2: "around 21%"
}

// ---------------------------------------------------------------------------

TEST(MlcTest, ReproducesTable1) {
  const MachineModel small(MachineSpec::OracleX5_8Core());
  const MlcReport r8 = MeasureMlc(small);
  EXPECT_DOUBLE_EQ(r8.local_latency_ns, 77.0);
  EXPECT_DOUBLE_EQ(r8.remote_latency_ns, 130.0);
  EXPECT_NEAR(r8.local_bw_gbps, 49.3, 0.1);
  EXPECT_NEAR(r8.remote_bw_gbps, 8.0, 0.1);
  EXPECT_NEAR(r8.total_local_bw_gbps, 98.6, 0.2);

  const MachineModel large(MachineSpec::OracleX5_18Core());
  const MlcReport r18 = MeasureMlc(large);
  EXPECT_NEAR(r18.local_bw_gbps, 43.8, 0.1);
  EXPECT_NEAR(r18.remote_bw_gbps, 26.8, 0.1);
  EXPECT_NEAR(r18.total_local_bw_gbps, 87.6, 0.2);
  EXPECT_DOUBLE_EQ(r18.local_latency_ns, 85.0);
  EXPECT_DOUBLE_EQ(r18.remote_latency_ns, 132.0);
}

TEST(PlacementSplitTest, SplitsAreConservative) {
  for (const auto& placement :
       {PlacementSpec::OsDefault(), PlacementSpec::SingleSocket(1),
        PlacementSpec::Interleaved(), PlacementSpec::Replicated()}) {
    for (const int thread_socket : {0, 1}) {
      const auto split = SplitBytesForPlacement(placement, 16.0, thread_socket, 2, 0.5);
      double total = 0.0;
      for (const double b : split) {
        EXPECT_GE(b, 0.0);
        total += b;
      }
      EXPECT_NEAR(total, 16.0, 1e-12) << ToString(placement);
    }
  }
}

TEST(PlacementSplitTest, SemanticsPerPlacement) {
  // Replicated: all local to the reading thread.
  auto repl = SplitBytesForPlacement(PlacementSpec::Replicated(), 8.0, 1, 2, 0.0);
  EXPECT_DOUBLE_EQ(repl[0], 0.0);
  EXPECT_DOUBLE_EQ(repl[1], 8.0);
  // Single socket: all on the pinned socket regardless of reader.
  auto single = SplitBytesForPlacement(PlacementSpec::SingleSocket(0), 8.0, 1, 2, 0.0);
  EXPECT_DOUBLE_EQ(single[0], 8.0);
  // Interleaved: even.
  auto il = SplitBytesForPlacement(PlacementSpec::Interleaved(), 8.0, 0, 2, 0.0);
  EXPECT_DOUBLE_EQ(il[0], 4.0);
  EXPECT_DOUBLE_EQ(il[1], 4.0);
  // OS default with spread 0.5: half scattered, half on the first-touch socket.
  auto os = SplitBytesForPlacement(PlacementSpec::OsDefault(0), 8.0, 1, 2, 0.5);
  EXPECT_DOUBLE_EQ(os[0], 6.0);
  EXPECT_DOUBLE_EQ(os[1], 2.0);
}

}  // namespace
}  // namespace sa::sim
