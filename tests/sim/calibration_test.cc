// Cost-model calibration: pins the simulated workloads to the operating
// points the paper reports, so that cost-table edits that would silently
// break the reproduction fail here instead (referenced from
// src/sim/cost_model.h).
#include <gtest/gtest.h>

#include "sim/workloads.h"

namespace sa::sim {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  MachineModel small_{MachineSpec::OracleX5_8Core()};
  MachineModel large_{MachineSpec::OracleX5_18Core()};

  RunReport Agg(const MachineModel& m, uint32_t bits, smart::PlacementSpec placement,
                bool java = false) {
    AggregationConfig c;
    c.bits = bits;
    c.placement = placement;
    c.java = java;
    return SimulateAggregation(m, c);
  }
};

TEST_F(CalibrationTest, InstructionBudgetsMatchFig10Panels) {
  // 500M iterations x 2 arrays. Paper's instruction panels: ~5e9 for the
  // native widths, ~20e9 for generic compressed widths (C++).
  const double native = Agg(large_, 64, smart::PlacementSpec::Replicated()).total_instructions;
  EXPECT_NEAR(native, 4e9, 1.5e9);
  const double compressed =
      Agg(large_, 33, smart::PlacementSpec::Replicated()).total_instructions;
  EXPECT_NEAR(compressed, 20e9, 5e9);
  // Widths don't change the instruction count of the generic path.
  EXPECT_DOUBLE_EQ(compressed,
                   Agg(large_, 10, smart::PlacementSpec::Replicated()).total_instructions);
}

TEST_F(CalibrationTest, CyclesAndInstructionsDecoupled) {
  // Decompression retires ~4.5x the instructions of the native path but
  // only ~2.2x the cycles (wide superscalar ALU work) — the property that
  // makes Fig. 2d possible. Verify through the CPU-bound regime: on the
  // 8-core machine a fully-compressed replicated run is CPU-bound, and its
  // time ratio to the uncompressed mem-bound run reflects cycles, not
  // instructions.
  const RunReport u = Agg(small_, 64, smart::PlacementSpec::Replicated());
  const RunReport c = Agg(small_, 33, smart::PlacementSpec::Replicated());
  const double instr_ratio = c.total_instructions / u.total_instructions;
  const double time_ratio = c.seconds / u.seconds;
  EXPECT_GT(instr_ratio, 4.0);
  EXPECT_LT(time_ratio, instr_ratio / 2.0);  // time grows far slower than instructions
}

TEST_F(CalibrationTest, SingleSocketScanSaturatesOneChannel) {
  // The anchor for all bandwidth numbers: a single-socket 64-bit scan must
  // pin the Table 1 local bandwidth on both machines.
  EXPECT_NEAR(Agg(small_, 64, smart::PlacementSpec::SingleSocket(0)).total_mem_gbps, 49.3, 0.5);
  EXPECT_NEAR(Agg(large_, 64, smart::PlacementSpec::SingleSocket(0)).total_mem_gbps, 43.8, 0.5);
}

TEST_F(CalibrationTest, JavaFactorsAreSmall) {
  // §5.1: Java "generally as good as" C++ — the modelled overhead must stay
  // in single-digit percents for time.
  for (const uint32_t bits : {64u, 33u}) {
    const double cpp = Agg(large_, bits, smart::PlacementSpec::Interleaved()).seconds;
    const double java =
        Agg(large_, bits, smart::PlacementSpec::Interleaved(), /*java=*/true).seconds;
    EXPECT_LE(java / cpp, 1.15) << bits;
    EXPECT_GE(java / cpp, 1.0) << bits;
  }
}

TEST_F(CalibrationTest, PageRankMemoryFootprintAnchors) {
  // §5.2: "V+E" saves ~21%; the absolute "U" footprint is ~12.2 GiB for the
  // Twitter graph under the paper's formula.
  PageRankConfig u;
  EXPECT_NEAR(static_cast<double>(PageRankFootprintBytes(u)) / (1 << 30), 12.2, 0.3);
}

TEST_F(CalibrationTest, CostModelDefaultsAreInternallyConsistent) {
  const CostModel cost;
  // Specializations must be cheaper than the generic path everywhere.
  EXPECT_LT(cost.elem_uncompressed.cycles, cost.elem_compressed.cycles);
  EXPECT_LT(cost.elem_compressed.cycles, cost.elem_compressed_gather.cycles);
  EXPECT_LT(cost.random_get_uncompressed.cycles, cost.random_get_compressed.cycles);
  // Sequential decode must be cheaper per element than a random getter
  // (that's the whole point of unpack()).
  EXPECT_LT(cost.elem_compressed.cycles, cost.random_get_compressed.cycles);
  // Width selection honours the 32/64 specializations.
  EXPECT_DOUBLE_EQ(cost.SequentialElem(32).cycles, cost.elem_uncompressed.cycles);
  EXPECT_DOUBLE_EQ(cost.SequentialElem(64).cycles, cost.elem_uncompressed.cycles);
  EXPECT_DOUBLE_EQ(cost.SequentialElem(33).cycles, cost.elem_compressed.cycles);
  EXPECT_DOUBLE_EQ(cost.RandomGet(31).cycles, cost.random_get_compressed.cycles);
}

}  // namespace
}  // namespace sa::sim
