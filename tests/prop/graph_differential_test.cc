// Differential graph analytics: PageRank and degree centrality on generated
// uniform and power-law graphs, smart-array kernels vs the naive scalar CSR
// references, swept across NUMA placement × compression tier ("U" native
// widths, "V" compressed indexes, "V+E" compressed edges too). The paper's
// §5.2 claim under test: the analytics answer is representation-independent.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/algorithms2.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/smart_graph.h"
#include "platform/topology.h"
#include "rts/worker_pool.h"
#include "smart/smart_array.h"

namespace {

using sa::graph::BfsLevels;
using sa::graph::BfsLevelsSmart;
using sa::graph::ConnectedComponents;
using sa::graph::ConnectedComponentsSmart;
using sa::graph::CountTriangles;
using sa::graph::CountTrianglesSmart;
using sa::graph::CsrGraph;
using sa::graph::DegreeCentrality;
using sa::graph::DegreeCentralitySmart;
using sa::graph::PageRank;
using sa::graph::PageRankSmart;
using sa::graph::PowerLawGraph;
using sa::graph::SmartCsrGraph;
using sa::graph::SmartGraphOptions;
using sa::graph::UniformRandomGraph;
using sa::graph::VertexId;

struct GraphCase {
  const char* name;
  CsrGraph csr;
};

struct RepresentationCase {
  const char* name;
  SmartGraphOptions options;
};

std::vector<GraphCase> Graphs() {
  std::vector<GraphCase> graphs;
  // Ragged vertex counts on purpose: the CSR arrays end mid-chunk.
  graphs.push_back({"uniform", UniformRandomGraph(/*num_vertices=*/911, /*out_degree=*/3,
                                                  /*seed=*/42)});
  graphs.push_back({"power-law", PowerLawGraph(/*num_vertices=*/733, /*num_edges=*/4001,
                                               /*alpha=*/0.7, /*seed=*/7)});
  return graphs;
}

std::vector<RepresentationCase> Representations() {
  using sa::smart::PlacementSpec;
  std::vector<RepresentationCase> reps;
  const struct {
    const char* tier;
    bool compress_indexes;
    bool compress_edges;
  } tiers[] = {{"U", false, false}, {"V", true, false}, {"V+E", true, true}};
  const PlacementSpec placements[] = {PlacementSpec::OsDefault(), PlacementSpec::SingleSocket(1),
                                      PlacementSpec::Interleaved(), PlacementSpec::Replicated()};
  for (const auto& tier : tiers) {
    for (const auto& placement : placements) {
      SmartGraphOptions options;
      options.placement = placement;
      options.compress_indexes = tier.compress_indexes;
      options.compress_edges = tier.compress_edges;
      reps.push_back({tier.tier, options});
    }
  }
  return reps;
}

class GraphDifferentialTest : public ::testing::Test {
 protected:
  sa::platform::Topology topo_ = sa::platform::Topology::Synthetic(2, 4);
  sa::rts::WorkerPool pool_{topo_, {.num_threads = 4, .pin_threads = false}};
};

TEST_F(GraphDifferentialTest, DegreeCentralityMatchesScalarReferenceEverywhere) {
  for (const auto& graph_case : Graphs()) {
    const std::vector<uint64_t> want = DegreeCentrality(graph_case.csr);
    for (const auto& rep : Representations()) {
      SmartCsrGraph g(graph_case.csr, rep.options, topo_, pool_);
      auto out = sa::smart::SmartArray::Allocate(
          graph_case.csr.num_vertices(), sa::smart::PlacementSpec::Interleaved(), 64, topo_);
      DegreeCentralitySmart(pool_, g, out.get());
      for (VertexId v = 0; v < graph_case.csr.num_vertices(); ++v) {
        ASSERT_EQ(out->Get(v, out->GetReplica(0)), want[v])
            << graph_case.name << " " << rep.name << " "
            << ToString(rep.options.placement) << " vertex " << v;
      }
    }
  }
}

TEST_F(GraphDifferentialTest, PageRankMatchesScalarReferenceEverywhere) {
  for (const auto& graph_case : Graphs()) {
    const auto want = PageRank(graph_case.csr);
    for (const auto& rep : Representations()) {
      SmartCsrGraph g(graph_case.csr, rep.options, topo_, pool_);
      const auto got = PageRankSmart(pool_, g, topo_);
      ASSERT_EQ(got.iterations, want.iterations)
          << graph_case.name << " " << rep.name << " " << ToString(rep.options.placement);
      ASSERT_EQ(got.ranks.size(), want.ranks.size());
      for (VertexId v = 0; v < graph_case.csr.num_vertices(); ++v) {
        ASSERT_NEAR(got.ranks[v], want.ranks[v], 1e-12)
            << graph_case.name << " " << rep.name << " "
            << ToString(rep.options.placement) << " vertex " << v;
      }
      EXPECT_NEAR(got.final_delta, want.final_delta, 1e-9);
    }
  }
}

TEST_F(GraphDifferentialTest, BfsLevelsMatchScalarReferenceEverywhere) {
  for (const auto& graph_case : Graphs()) {
    // Two sources: vertex 0 and one deep in the id range (different frontier
    // shapes; on the power-law graph the second often starts in the tail).
    for (const VertexId source : {VertexId{0}, graph_case.csr.num_vertices() / 2}) {
      const std::vector<uint64_t> want = BfsLevels(graph_case.csr, source);
      for (const auto& rep : Representations()) {
        SmartCsrGraph g(graph_case.csr, rep.options, topo_, pool_);
        const std::vector<uint64_t> got = BfsLevelsSmart(pool_, g, source, topo_);
        ASSERT_EQ(got, want) << graph_case.name << " " << rep.name << " "
                             << ToString(rep.options.placement) << " source " << source;
      }
    }
  }
}

TEST_F(GraphDifferentialTest, ConnectedComponentsMatchScalarReferenceEverywhere) {
  for (const auto& graph_case : Graphs()) {
    const std::vector<uint64_t> want = ConnectedComponents(graph_case.csr);
    for (const auto& rep : Representations()) {
      SmartCsrGraph g(graph_case.csr, rep.options, topo_, pool_);
      ASSERT_EQ(ConnectedComponentsSmart(pool_, g, topo_), want)
          << graph_case.name << " " << rep.name << " " << ToString(rep.options.placement);
    }
  }
}

TEST_F(GraphDifferentialTest, TriangleCountsMatchScalarReferenceEverywhere) {
  for (const auto& graph_case : Graphs()) {
    const uint64_t want = CountTriangles(graph_case.csr);
    for (const auto& rep : Representations()) {
      SmartCsrGraph g(graph_case.csr, rep.options, topo_, pool_);
      ASSERT_EQ(CountTrianglesSmart(pool_, g), want)
          << graph_case.name << " " << rep.name << " " << ToString(rep.options.placement);
    }
  }
}

// Degenerate topologies the generators never produce, swept through the
// same representation grid: no edges at all, self-loops (a triangle-count
// trap), zero-degree vertices inside the id range, and multiple components
// (BFS must report kUnreachable, CC distinct labels).
TEST_F(GraphDifferentialTest, EdgeCaseGraphsMatchScalarReferencesEverywhere) {
  struct EdgeCase {
    const char* name;
    VertexId source;
    CsrGraph csr;
  };
  const EdgeCase cases[] = {
      {"edgeless", 2, CsrGraph::FromEdges(7, {})},
      {"self-loops", 0,
       CsrGraph::FromEdges(5, {{0, 0}, {1, 1}, {2, 0}, {0, 2}, {3, 4}, {4, 3}})},
      {"disconnected", 0,
       CsrGraph::FromEdges(10, {{0, 1}, {1, 2}, {2, 0}, {6, 7}, {7, 8}, {8, 6}, {6, 8}})},
  };
  for (const auto& edge_case : cases) {
    const std::vector<uint64_t> want_bfs = BfsLevels(edge_case.csr, edge_case.source);
    const std::vector<uint64_t> want_cc = ConnectedComponents(edge_case.csr);
    const uint64_t want_tri = CountTriangles(edge_case.csr);
    const std::vector<uint64_t> want_deg = DegreeCentrality(edge_case.csr);
    for (const auto& rep : Representations()) {
      SmartCsrGraph g(edge_case.csr, rep.options, topo_, pool_);
      const std::string label = std::string(edge_case.name) + " " + rep.name + " " +
                                ToString(rep.options.placement);
      ASSERT_EQ(BfsLevelsSmart(pool_, g, edge_case.source, topo_), want_bfs) << label;
      ASSERT_EQ(ConnectedComponentsSmart(pool_, g, topo_), want_cc) << label;
      ASSERT_EQ(CountTrianglesSmart(pool_, g), want_tri) << label;
      auto out = sa::smart::SmartArray::Allocate(
          edge_case.csr.num_vertices(), sa::smart::PlacementSpec::Interleaved(), 64, topo_);
      DegreeCentralitySmart(pool_, g, out.get());
      for (VertexId v = 0; v < edge_case.csr.num_vertices(); ++v) {
        ASSERT_EQ(out->Get(v, out->GetReplica(0)), want_deg[v]) << label << " vertex " << v;
      }
    }
  }
}

// The compressed tiers must actually compress (otherwise the sweep above
// proves less than it claims): "V" narrows the index arrays, "V+E" also
// narrows the edge arrays.
TEST_F(GraphDifferentialTest, CompressionTiersNarrowTheStorage) {
  for (const auto& graph_case : Graphs()) {
    SmartGraphOptions uncompressed;
    SmartGraphOptions v_tier;
    v_tier.compress_indexes = true;
    SmartGraphOptions ve_tier = v_tier;
    ve_tier.compress_edges = true;

    SmartCsrGraph gu(graph_case.csr, uncompressed, topo_, pool_);
    SmartCsrGraph gv(graph_case.csr, v_tier, topo_, pool_);
    SmartCsrGraph gve(graph_case.csr, ve_tier, topo_, pool_);

    EXPECT_EQ(gu.index_bits(), 64u) << graph_case.name;
    EXPECT_LT(gv.index_bits(), gu.index_bits()) << graph_case.name;
    EXPECT_LT(gve.edge_bits(), gv.edge_bits()) << graph_case.name;
    EXPECT_LT(gve.footprint_bytes(), gu.footprint_bytes()) << graph_case.name;
  }
}

}  // namespace
