// Deterministic fault-injection seams, tested in isolation: the platform
// allocation countdown (MappedRegion -> SmartArray::TryAllocate ->
// TryRestructure) and the registry pre-publish hook (racing-write refusal).
#include <gtest/gtest.h>

#include "platform/fault_injection.h"
#include "platform/numa_memory.h"
#include "platform/topology.h"
#include "runtime/registry.h"
#include "rts/worker_pool.h"
#include "smart/restructure.h"
#include "smart/smart_array.h"

namespace {

using sa::platform::MappedRegion;
using sa::platform::PagePolicy;
using sa::platform::Topology;
using sa::smart::PlacementSpec;
using sa::smart::SmartArray;
namespace fault = sa::platform::fault;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Disarm(); }

  Topology topo_ = Topology::Synthetic(2, 4);
};

TEST_F(FaultInjectionTest, CountdownFailsTheNthMapping) {
  fault::ArmAllocFailure(/*countdown=*/2);
  MappedRegion a(4096, PagePolicy::kOsDefault, 0, topo_);
  MappedRegion b(4096, PagePolicy::kOsDefault, 0, topo_);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(fault::AllocFailuresFired(), 0u);
  MappedRegion c(4096, PagePolicy::kOsDefault, 0, topo_);
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(fault::AllocFailuresFired(), 1u);
  fault::Disarm();
  MappedRegion d(4096, PagePolicy::kOsDefault, 0, topo_);
  EXPECT_TRUE(d.valid());
}

TEST_F(FaultInjectionTest, TryAllocateSurfacesInjectedOomAsNull) {
  fault::ArmAllocFailure(0);
  EXPECT_EQ(SmartArray::TryAllocate(1000, PlacementSpec::OsDefault(), 13, topo_), nullptr);
  fault::Disarm();
  auto ok = SmartArray::TryAllocate(1000, PlacementSpec::OsDefault(), 13, topo_);
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->allocation_ok());
}

TEST_F(FaultInjectionTest, ReplicatedAllocationFailsOnSecondReplicaToo) {
  // First replica maps fine; the countdown kills the second. The factory
  // must not hand out a half-replicated array.
  fault::ArmAllocFailure(1);
  EXPECT_EQ(SmartArray::TryAllocate(1000, PlacementSpec::Replicated(), 13, topo_), nullptr);
  EXPECT_GE(fault::AllocFailuresFired(), 1u);
}

TEST_F(FaultInjectionTest, TryRestructureReturnsNullUnderInjectedOom) {
  sa::rts::WorkerPool pool(topo_, {.num_threads = 2, .pin_threads = false});
  auto source = SmartArray::Allocate(1000, PlacementSpec::OsDefault(), 13, topo_);
  for (uint64_t i = 0; i < 1000; ++i) {
    source->Init(i, i % 100);
  }
  fault::ArmAllocFailure(0);
  EXPECT_EQ(sa::smart::TryRestructure(pool, *source, PlacementSpec::Interleaved(), 13, topo_),
            nullptr);
  fault::Disarm();
  auto rebuilt =
      sa::smart::TryRestructure(pool, *source, PlacementSpec::Interleaved(), 13, topo_);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->Get(999, rebuilt->GetReplica(0)), 99u);
}

TEST_F(FaultInjectionTest, PrePublishHookForcesLostWriteRefusal) {
  sa::rts::WorkerPool pool(topo_, {.num_threads = 2, .pin_threads = false});
  sa::runtime::ArrayRegistry registry(topo_);
  auto* slot = registry.Create("hooked", 500, PlacementSpec::OsDefault(), 13);
  for (uint64_t i = 0; i < 500; ++i) {
    slot->Write(i, i % 50);
  }

  int hook_calls = 0;
  sa::runtime::testing::SetPrePublishHook([&](sa::runtime::ArraySlot& s) {
    ++hook_calls;
    s.Write(7, 49);  // the racing write the rebuild cannot have seen
  });

  const uint64_t writes_before = slot->write_count();
  {
    auto snapshot = slot->Acquire();
    auto rebuilt = sa::smart::TryRestructure(pool, snapshot.array(),
                                             PlacementSpec::Interleaved(), 13, topo_);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_FALSE(registry.Publish(*slot, std::move(rebuilt), writes_before));
  }
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(slot->sequence(), 0u) << "refused publish must not swap storage";

  // Clear the hook and retry from fresh contents: the publish goes through.
  sa::runtime::testing::SetPrePublishHook(nullptr);
  const uint64_t writes_now = slot->write_count();
  {
    auto snapshot = slot->Acquire();
    auto rebuilt = sa::smart::TryRestructure(pool, snapshot.array(),
                                             PlacementSpec::Interleaved(), 13, topo_);
    ASSERT_NE(rebuilt, nullptr);
    EXPECT_TRUE(registry.Publish(*slot, std::move(rebuilt), writes_now));
  }
  EXPECT_EQ(slot->sequence(), 1u);
  {
    auto snapshot = slot->Acquire();
    EXPECT_EQ(snapshot.Get(7), 49u) << "the racing write survived the refused publish";
  }
}

}  // namespace
