// PR-tier property tests: a deterministic slice of the sa_testkit grid run
// inside ctest. The nightly CI job runs the full grid with 10k-op programs
// under sanitizers; this smoke keeps every variant × access-path pairing
// honest on every push.
#include <gtest/gtest.h>

#include "testkit/checker.h"
#include "testkit/generator.h"
#include "testkit/model.h"
#include "testkit/program.h"
#include "testkit/scenario.h"

namespace {

using sa::testkit::ArrayModel;
using sa::testkit::CheckOptions;
using sa::testkit::CheckScenario;
using sa::testkit::OpSequenceGenerator;
using sa::testkit::Program;
using sa::testkit::ScenarioGrid;
using sa::testkit::TestContext;
using sa::testkit::Variant;

TEST(ScenarioGridTest, CoversEveryVariantAndAccessPath) {
  const auto& grid = ScenarioGrid();
  ASSERT_GT(grid.size(), 100u);
  bool plain = false, synchronized = false, registry = false;
  bool c_abi = false, alloc_fault = false, publish_race = false;
  bool multi_slot = false, multi_slot_cabi = false, concurrent_daemon = false;
  bool graph_ops = false, graph_under_daemon = false;
  bool scan_ops = false, scan_cabi = false, scan_under_fault = false, scan_under_daemon = false;
  for (const auto& s : grid) {
    plain |= s.variant == Variant::kPlain;
    synchronized |= s.variant == Variant::kSynchronized;
    registry |= s.variant == Variant::kRegistry;
    c_abi |= s.via_c_abi;
    alloc_fault |= s.inject_alloc_failure;
    publish_race |= s.inject_publish_race;
    multi_slot |= s.num_slots > 1;
    multi_slot_cabi |= s.num_slots > 1 && s.via_c_abi;
    concurrent_daemon |= s.concurrent_daemon;
    graph_ops |= s.graph_ops;
    graph_under_daemon |= s.graph_ops && s.concurrent_daemon;
    scan_ops |= s.scan_ops;
    scan_cabi |= s.scan_ops && s.via_c_abi;
    scan_under_fault |= s.scan_ops && (s.inject_alloc_failure || s.inject_publish_race);
    scan_under_daemon |= s.scan_ops && s.concurrent_daemon;
  }
  EXPECT_TRUE(plain && synchronized && registry);
  EXPECT_TRUE(c_abi);
  EXPECT_TRUE(alloc_fault);
  EXPECT_TRUE(publish_race);
  EXPECT_TRUE(multi_slot);
  EXPECT_TRUE(multi_slot_cabi);
  EXPECT_TRUE(concurrent_daemon);
  EXPECT_TRUE(graph_ops);
  EXPECT_TRUE(graph_under_daemon);
  EXPECT_TRUE(scan_ops);
  EXPECT_TRUE(scan_cabi);
  EXPECT_TRUE(scan_under_fault);
  EXPECT_TRUE(scan_under_daemon);
  // Replay commands bake scenario indices, so the grid is append-only:
  // index 307 is pinned as the first graph-ops scenario (CI's mutation
  // canary replays it by number).
  ASSERT_GT(grid.size(), 307u);
  EXPECT_TRUE(grid[307].graph_ops);
  EXPECT_FALSE(grid[306].graph_ops);
}

TEST(GeneratorTest, SameSeedSameProgram) {
  const auto& scenario = ScenarioGrid()[0];
  OpSequenceGenerator g1(12345);
  OpSequenceGenerator g2(12345);
  const Program p1 = g1.Generate(scenario, 500);
  const Program p2 = g2.Generate(scenario, 500);
  ASSERT_EQ(p1.ops.size(), p2.ops.size());
  for (size_t i = 0; i < p1.ops.size(); ++i) {
    EXPECT_EQ(p1.ops[i].kind, p2.ops[i].kind);
    EXPECT_EQ(p1.ops[i].a, p2.ops[i].a);
    EXPECT_EQ(p1.ops[i].b, p2.ops[i].b);
    EXPECT_EQ(p1.ops[i].c, p2.ops[i].c);
  }
  OpSequenceGenerator g3(12346);
  const Program p3 = g3.Generate(scenario, 500);
  bool differs = false;
  for (size_t i = 0; i < p3.ops.size() && !differs; ++i) {
    differs = p3.ops[i].a != p1.ops[i].a || p3.ops[i].kind != p1.ops[i].kind;
  }
  EXPECT_TRUE(differs) << "adjacent seeds should not generate identical programs";
}

TEST(ArrayModelTest, MaskingAndWidthBookkeeping) {
  ArrayModel model(10, 4);
  model.Set(3, 0xFF);
  EXPECT_EQ(model.Get(3), 0xFu);  // masked to 4 bits
  EXPECT_EQ(model.FetchAdd(3, 2), 0xFu);
  EXPECT_EQ(model.Get(3), 0x1u);  // (15 + 2) & 0xF
  EXPECT_EQ(model.MinimalBits(), 1u);
  model.Set(0, 0xB);
  EXPECT_EQ(model.MinimalBits(), 4u);
  EXPECT_TRUE(model.Fits(4));
  EXPECT_FALSE(model.Fits(3));
  EXPECT_EQ(model.SumRange(0, 10), 0xB + 0x1u);
}

// A curated slice of the grid: first plain-native scenario, a plain C-ABI
// one, a synchronized one, a registry-native one, a registry C-ABI one and
// every fault-injection scenario. Each runs a short seeded program — any
// divergence fails with the shrunk program + replay command in the message.
class PropSmokeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropSmokeTest, ScenarioSliceRunsClean) {
  const auto& grid = ScenarioGrid();
  std::vector<size_t> indices;
  bool seen_plain_cabi = false, seen_sync = false, seen_reg = false, seen_reg_cabi = false;
  bool seen_multi = false, seen_multi_cabi = false, seen_daemon = false;
  bool seen_graph = false, seen_graph_daemon = false;
  bool seen_scan = false, seen_scan_cabi = false;
  indices.push_back(0);
  for (size_t i = 0; i < grid.size(); ++i) {
    const auto& s = grid[i];
    if (!seen_plain_cabi && s.variant == Variant::kPlain && s.via_c_abi) {
      indices.push_back(i);
      seen_plain_cabi = true;
    } else if (!seen_sync && s.variant == Variant::kSynchronized) {
      indices.push_back(i);
      seen_sync = true;
    } else if (!seen_reg && s.variant == Variant::kRegistry && !s.via_c_abi &&
               !s.inject_alloc_failure && !s.inject_publish_race && s.num_slots == 1) {
      indices.push_back(i);
      seen_reg = true;
    } else if (!seen_reg_cabi && s.variant == Variant::kRegistry && s.via_c_abi &&
               s.num_slots == 1) {
      indices.push_back(i);
      seen_reg_cabi = true;
    } else if (s.inject_alloc_failure || s.inject_publish_race) {
      indices.push_back(i);
    } else if (!seen_multi && s.num_slots > 1 && !s.via_c_abi && !s.concurrent_daemon) {
      indices.push_back(i);
      seen_multi = true;
    } else if (!seen_multi_cabi && s.num_slots > 1 && s.via_c_abi) {
      indices.push_back(i);
      seen_multi_cabi = true;
    } else if (!seen_daemon && s.concurrent_daemon && !s.graph_ops) {
      indices.push_back(i);
      seen_daemon = true;
    } else if (!seen_graph && s.graph_ops && !s.concurrent_daemon) {
      indices.push_back(i);
      seen_graph = true;
    } else if (!seen_graph_daemon && s.graph_ops && s.concurrent_daemon) {
      indices.push_back(i);
      seen_graph_daemon = true;
    } else if (!seen_scan && s.scan_ops && !s.via_c_abi && !s.concurrent_daemon) {
      indices.push_back(i);
      seen_scan = true;
    } else if (!seen_scan_cabi && s.scan_ops && s.via_c_abi) {
      indices.push_back(i);
      seen_scan_cabi = true;
    }
  }
  ASSERT_GE(indices.size(), 15u);

  TestContext ctx;
  CheckOptions options;
  for (const size_t index : indices) {
    const auto verdict = CheckScenario(index, /*seed=*/GetParam(), /*num_ops=*/128, ctx, options);
    EXPECT_TRUE(verdict.ok) << verdict.Report();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropSmokeTest, ::testing::Values(uint64_t{1}, uint64_t{99}));

}  // namespace
