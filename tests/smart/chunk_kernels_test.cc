// Differential tests for the chunk-granular aggregation kernels: every
// width 1..64, random values, ragged lengths and unaligned sub-ranges, all
// checked against the buffered TypedIterator scan (the path the kernels
// replace) and against plain per-element arithmetic mod 2^64.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "smart/dispatch.h"
#include "smart/iterator.h"
#include "smart/smart_array.h"

namespace sa::smart {
namespace {

class ChunkKernelTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  ChunkKernelTest() : topo_(platform::Topology::Synthetic(1, 2)) {}

  // A freshly filled array of `n` random width-masked values plus the same
  // values in a plain vector (the oracle).
  std::unique_ptr<SmartArray> Fill(uint64_t n, uint64_t seed, std::vector<uint64_t>* oracle) {
    const uint32_t bits = GetParam();
    auto array = SmartArray::Allocate(n, PlacementSpec::OsDefault(), bits, topo_);
    const uint64_t mask = array->max_value();
    Xoshiro256 rng(seed * 64 + bits);
    oracle->resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      (*oracle)[i] = rng() & mask;
      array->Init(i, (*oracle)[i]);
    }
    return array;
  }

  // Reference sum over [begin, end) through the buffered-chunk iterator —
  // the decode path the block kernels must agree with bit-for-bit.
  static uint64_t IteratorSum(const SmartArray& array, uint64_t begin, uint64_t end) {
    return WithBits(array.bits(), [&](auto bits_const) -> uint64_t {
      constexpr uint32_t kBits = bits_const();
      TypedIterator<kBits> it(array.GetReplica(0), begin);
      uint64_t sum = 0;
      for (uint64_t i = begin; i < end; ++i, it.Next()) {
        sum += it.Get();
      }
      return sum;
    });
  }

  platform::Topology topo_;
};

// Ragged lengths around chunk boundaries plus larger odd sizes.
constexpr uint64_t kLengths[] = {1, 63, 64, 65, 127, 128, 129, 1000, 4113};

TEST_P(ChunkKernelTest, SumRangeMatchesIteratorAllLengths) {
  for (const uint64_t n : kLengths) {
    std::vector<uint64_t> oracle;
    auto array = Fill(n, n, &oracle);
    WithBits(GetParam(), [&](auto bits_const) {
      constexpr uint32_t kBits = bits_const();
      using Codec = BitCompressedArray<kBits>;
      const uint64_t* replica = array->GetReplica(0);
      EXPECT_EQ(Codec::SumRangeImpl(replica, 0, n), IteratorSum(*array, 0, n))
          << "bits=" << kBits << " n=" << n;
      EXPECT_EQ(Codec::SumRange(replica, 0, n), Codec::SumRangeImpl(replica, 0, n))
          << "dispatching kernel disagrees with scalar, bits=" << kBits << " n=" << n;
      return 0;
    });
  }
}

TEST_P(ChunkKernelTest, SumRangeMatchesIteratorOnSubRanges) {
  const uint64_t n = 1000;
  std::vector<uint64_t> oracle;
  auto array = Fill(n, 7, &oracle);
  // Unaligned begins and ends in every combination of head/body/tail
  // raggedness, including empty and single-chunk-interior ranges.
  const std::pair<uint64_t, uint64_t> kRanges[] = {
      {0, 0},    {5, 5},   {0, 1},    {0, 63},   {0, 64},  {0, 65},   {1, 63},
      {1, 64},   {1, 65},  {63, 65},  {64, 128}, {17, 41}, {17, 991}, {64, 1000},
      {65, 999}, {128, 960}, {999, 1000}, {0, 1000}};
  WithBits(GetParam(), [&](auto bits_const) {
    constexpr uint32_t kBits = bits_const();
    using Codec = BitCompressedArray<kBits>;
    const uint64_t* replica = array->GetReplica(0);
    for (const auto& [begin, end] : kRanges) {
      uint64_t want = 0;
      for (uint64_t i = begin; i < end; ++i) {
        want += oracle[i];
      }
      EXPECT_EQ(Codec::SumRangeImpl(replica, begin, end), want)
          << "bits=" << kBits << " range=[" << begin << "," << end << ")";
      EXPECT_EQ(Codec::SumRange(replica, begin, end), want)
          << "bits=" << kBits << " range=[" << begin << "," << end << ")";
    }
    return 0;
  });
}

TEST_P(ChunkKernelTest, SumChunkAndSlicesMatchOracle) {
  const uint64_t n = 4113;
  std::vector<uint64_t> oracle;
  auto array = Fill(n, 13, &oracle);
  WithBits(GetParam(), [&](auto bits_const) {
    constexpr uint32_t kBits = bits_const();
    using Codec = BitCompressedArray<kBits>;
    const uint64_t* replica = array->GetReplica(0);
    for (uint64_t chunk = 0; chunk < n / kChunkElems; ++chunk) {
      uint64_t want = 0;
      for (uint32_t j = 0; j < kChunkElems; ++j) {
        want += oracle[chunk * kChunkElems + j];
      }
      EXPECT_EQ(Codec::SumChunkImpl(replica, chunk), want) << "bits=" << kBits
                                                           << " chunk=" << chunk;
    }
    // Slices of chunk 2: all (lo, hi) pairs over a stride-5 grid plus the
    // degenerate and full slices.
    for (uint32_t lo = 0; lo <= kChunkElems; lo += 5) {
      for (uint32_t hi = lo; hi <= kChunkElems; hi += 5) {
        uint64_t want = 0;
        for (uint32_t j = lo; j < hi; ++j) {
          want += oracle[2 * kChunkElems + j];
        }
        EXPECT_EQ(Codec::SumChunkSliceImpl(replica, 2, lo, hi), want)
            << "bits=" << kBits << " slice=[" << lo << "," << hi << ")";
      }
    }
    EXPECT_EQ(Codec::SumChunkSliceImpl(replica, 2, 0, kChunkElems),
              Codec::SumChunkImpl(replica, 2));
    return 0;
  });
}

TEST_P(ChunkKernelTest, Sum2RangeMatchesPerElementSum) {
  const uint64_t n = 1000;
  std::vector<uint64_t> oracle1;
  std::vector<uint64_t> oracle2;
  auto a1 = Fill(n, 17, &oracle1);
  auto a2 = Fill(n, 23, &oracle2);
  const std::pair<uint64_t, uint64_t> kRanges[] = {{0, n}, {1, n}, {17, 991}, {64, 64}, {63, 65}};
  WithBits(GetParam(), [&](auto bits_const) {
    constexpr uint32_t kBits = bits_const();
    using Codec = BitCompressedArray<kBits>;
    const uint64_t* r1 = a1->GetReplica(0);
    const uint64_t* r2 = a2->GetReplica(0);
    for (const auto& [begin, end] : kRanges) {
      uint64_t want = 0;
      for (uint64_t i = begin; i < end; ++i) {
        want += oracle1[i] + oracle2[i];
      }
      EXPECT_EQ(Codec::Sum2RangeImpl(r1, r2, begin, end), want)
          << "bits=" << kBits << " range=[" << begin << "," << end << ")";
      EXPECT_EQ(Codec::Sum2Range(r1, r2, begin, end), want)
          << "bits=" << kBits << " range=[" << begin << "," << end << ")";
    }
    return 0;
  });
}

TEST_P(ChunkKernelTest, V2KernelsMatchScalarWhenRunnable) {
  // Gates on *candidacy* (the width has a v2 network and the host can run
  // AVX2), not on the measured selection: the v2 kernels must be correct
  // even at widths where the table kept the block kernel.
  const bool runnable = WithBits(
      GetParam(), [](auto bits_const) { return BitCompressedArray<bits_const()>::HasV2Kernels(); });
  if (!runnable) {
    GTEST_SKIP() << "no v2 kernel for bits=" << GetParam()
                 << " (native-width special case, no host support, or SA_DISABLE_AVX2)";
  }
#if defined(SA_HAVE_AVX2_KERNELS)
  WithBits(GetParam(), [&](auto bits_const) {
    constexpr uint32_t kBits = bits_const();
    using Codec = BitCompressedArray<kBits>;
    for (const uint64_t n : kLengths) {
      std::vector<uint64_t> oracle;
      auto array = Fill(n, n + 31, &oracle);
      const uint64_t* replica = array->GetReplica(0);
      EXPECT_EQ(Codec::SumRangeV2(replica, 0, n), Codec::SumRangeImpl(replica, 0, n))
          << "bits=" << kBits << " n=" << n;
      if (n > 2) {
        EXPECT_EQ(Codec::SumRangeV2(replica, 1, n - 1), Codec::SumRangeImpl(replica, 1, n - 1))
            << "bits=" << kBits << " n=" << n;
      }
      auto a2 = Fill(n, n + 37, &oracle);
      EXPECT_EQ(Codec::Sum2RangeV2(replica, a2->GetReplica(0), 0, n),
                Codec::Sum2RangeImpl(replica, a2->GetReplica(0), 0, n))
          << "bits=" << kBits << " n=" << n;
      // The v2 chunk decoder against the unrolled scalar decoder, whole
      // chunks only (its unit of work).
      uint64_t got[kChunkElems];
      uint64_t want[kChunkElems];
      for (uint64_t chunk = 0; chunk < n / kChunkElems; ++chunk) {
        Codec::UnpackChunkV2(replica, chunk, got);
        Codec::UnpackUnrolledImpl(replica, chunk, want);
        for (uint32_t j = 0; j < kChunkElems; ++j) {
          EXPECT_EQ(got[j], want[j]) << "bits=" << kBits << " chunk=" << chunk << " j=" << j;
        }
      }
    }
    return 0;
  });
#endif
}

TEST_P(ChunkKernelTest, ForEachRangeVisitsEveryElementInOrder) {
  const uint64_t n = 1000;
  std::vector<uint64_t> oracle;
  auto array = Fill(n, 41, &oracle);
  const std::pair<uint64_t, uint64_t> kRanges[] = {{0, n}, {0, 0}, {5, 64}, {63, 321}, {64, 999}};
  WithBits(GetParam(), [&](auto bits_const) {
    constexpr uint32_t kBits = bits_const();
    const uint64_t* replica = array->GetReplica(0);
    for (const auto& [begin, end] : kRanges) {
      uint64_t next = begin;
      BitCompressedArray<kBits>::ForEachRangeImpl(
          replica, begin, end, [&](uint64_t value, uint64_t index) {
            EXPECT_EQ(index, next) << "bits=" << kBits;
            EXPECT_EQ(value, oracle[index]) << "bits=" << kBits << " index=" << index;
            ++next;
          });
      EXPECT_EQ(next, end) << "bits=" << kBits;
    }
    return 0;
  });
}

TEST_P(ChunkKernelTest, CodecTableSumRangeAgreesWithStaticKernels) {
  const uint64_t n = 1000;
  std::vector<uint64_t> oracle;
  auto a1 = Fill(n, 53, &oracle);
  auto a2 = Fill(n, 59, &oracle);
  const CodecOps& ops = CodecFor(GetParam());
  const uint64_t* r1 = a1->GetReplica(0);
  const uint64_t* r2 = a2->GetReplica(0);
  EXPECT_EQ(ops.sum_range(r1, 0, n), IteratorSum(*a1, 0, n));
  EXPECT_EQ(ops.sum_range(r1, 65, 999), IteratorSum(*a1, 65, 999));
  EXPECT_EQ(ops.sum2_range(r1, r2, 0, n), ops.sum_range(r1, 0, n) + ops.sum_range(r2, 0, n));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, ChunkKernelTest, ::testing::Range(1u, 65u),
                         [](const ::testing::TestParamInfo<uint32_t>& param_info) {
                           return "bits" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace sa::smart
