// Codec-level tests for BitCompressedArray<BITS>: Functions 1-3 of the
// paper, exercised for every width 1..64 through the runtime dispatch table
// (which points at the same static codec the templates use).
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/random.h"
#include "smart/bit_compressed_array.h"
#include "smart/dispatch.h"

namespace sa::smart {
namespace {

class CodecTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  uint32_t bits() const { return GetParam(); }
  uint64_t mask() const { return LowMask(bits()); }

  // A word buffer big enough for `n` elements, rounded to whole chunks.
  std::vector<uint64_t> MakeStorage(uint64_t n) const {
    const uint64_t chunks = (n + kChunkElems - 1) / kChunkElems;
    return std::vector<uint64_t>(chunks * WordsPerChunk(bits()), 0);
  }
};

TEST_P(CodecTest, RoundTripSequentialValues) {
  const auto& codec = CodecFor(bits());
  const uint64_t n = 300;  // spans several chunks, ends mid-chunk
  auto words = MakeStorage(n);
  for (uint64_t i = 0; i < n; ++i) {
    codec.init(words.data(), i, i & mask());
  }
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(codec.get(words.data(), i), i & mask()) << "index " << i;
  }
}

TEST_P(CodecTest, RoundTripExtremeValues) {
  const auto& codec = CodecFor(bits());
  const uint64_t n = 130;
  auto words = MakeStorage(n);
  // Alternate min/max so every neighbour boundary carries a 0->1 transition.
  for (uint64_t i = 0; i < n; ++i) {
    codec.init(words.data(), i, i % 2 == 0 ? mask() : 0);
  }
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(codec.get(words.data(), i), i % 2 == 0 ? mask() : 0);
  }
}

TEST_P(CodecTest, RoundTripRandomValues) {
  const auto& codec = CodecFor(bits());
  const uint64_t n = 1024;
  auto words = MakeStorage(n);
  std::vector<uint64_t> expected(n);
  Xoshiro256 rng(42 + bits());
  for (uint64_t i = 0; i < n; ++i) {
    expected[i] = rng() & mask();
    codec.init(words.data(), i, expected[i]);
  }
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(codec.get(words.data(), i), expected[i]) << "index " << i;
  }
}

TEST_P(CodecTest, OverwriteDoesNotDisturbNeighbours) {
  const auto& codec = CodecFor(bits());
  const uint64_t n = 192;
  auto words = MakeStorage(n);
  for (uint64_t i = 0; i < n; ++i) {
    codec.init(words.data(), i, mask());  // all ones everywhere
  }
  // Rewrite every third element to zero; neighbours must keep their ones.
  for (uint64_t i = 0; i < n; i += 3) {
    codec.init(words.data(), i, 0);
  }
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(codec.get(words.data(), i), i % 3 == 0 ? 0 : mask()) << "index " << i;
  }
}

TEST_P(CodecTest, UnpackMatchesGets) {
  const auto& codec = CodecFor(bits());
  const uint64_t n = 4 * kChunkElems;
  auto words = MakeStorage(n);
  Xoshiro256 rng(7 * bits());
  for (uint64_t i = 0; i < n; ++i) {
    codec.init(words.data(), i, rng() & mask());
  }
  uint64_t out[kChunkElems];
  for (uint64_t chunk = 0; chunk < n / kChunkElems; ++chunk) {
    codec.unpack(words.data(), chunk, out);
    for (uint32_t i = 0; i < kChunkElems; ++i) {
      EXPECT_EQ(out[i], codec.get(words.data(), chunk * kChunkElems + i))
          << "chunk " << chunk << " elem " << i;
    }
  }
}

TEST_P(CodecTest, UnpackDoesNotReadPastChunkEnd) {
  // Regression guard for the final-element read in Function 3: unpacking the
  // LAST chunk of an allocation must not touch the word after it.
  const auto& codec = CodecFor(bits());
  auto words = MakeStorage(kChunkElems);  // exactly one chunk
  for (uint64_t i = 0; i < kChunkElems; ++i) {
    codec.init(words.data(), i, i & mask());
  }
  // Place the chunk at the very end of a fresh buffer; ASan/valgrind would
  // catch an overrun, and we assert value correctness regardless.
  uint64_t out[kChunkElems];
  codec.unpack(words.data(), 0, out);
  for (uint64_t i = 0; i < kChunkElems; ++i) {
    EXPECT_EQ(out[i], i & mask());
  }
}

TEST_P(CodecTest, UnrolledUnpackMatchesLoopUnpack) {
  const uint64_t n = 3 * kChunkElems;
  auto words = MakeStorage(n);
  const auto& codec = CodecFor(bits());
  Xoshiro256 rng(31 * bits());
  for (uint64_t i = 0; i < n; ++i) {
    codec.init(words.data(), i, rng() & mask());
  }
  uint64_t loop_out[kChunkElems];
  uint64_t unrolled_out[kChunkElems];
  WithBits(bits(), [&](auto bits_const) {
    constexpr uint32_t kBits = bits_const();
    for (uint64_t chunk = 0; chunk < n / kChunkElems; ++chunk) {
      BitCompressedArray<kBits>::UnpackImpl(words.data(), chunk, loop_out);
      BitCompressedArray<kBits>::UnpackUnrolledImpl(words.data(), chunk, unrolled_out);
      for (uint32_t i = 0; i < kChunkElems; ++i) {
        EXPECT_EQ(loop_out[i], unrolled_out[i]) << "chunk " << chunk << " elem " << i;
      }
    }
    return 0;
  });
}

TEST_P(CodecTest, InitAtomicMatchesInit) {
  const auto& codec = CodecFor(bits());
  const uint64_t n = 256;
  auto words_plain = MakeStorage(n);
  auto words_atomic = MakeStorage(n);
  Xoshiro256 rng(1234 + bits());
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t v = rng() & mask();
    codec.init(words_plain.data(), i, v);
    codec.init_atomic(words_atomic.data(), i, v);
  }
  EXPECT_EQ(words_plain, words_atomic);
}

TEST_P(CodecTest, WordsPerChunkEqualsBits) {
  // The layout property the whole design rests on (§4.2): 64 elements of
  // BITS width occupy exactly BITS words.
  EXPECT_EQ(WordsPerChunk(bits()), bits());
  EXPECT_EQ(kChunkElems * bits() % kWordBits, 0u);
}

TEST_P(CodecTest, StraddlingElementsReconstructed) {
  // Every element whose bit range crosses a word boundary must reassemble
  // from its two halves (Function 1 lines 10-11).
  if (bits() == 32 || bits() == 64 || 64 % bits() == 0) {
    GTEST_SKIP() << "width divides the word; no element straddles";
  }
  const auto& codec = CodecFor(bits());
  auto words = MakeStorage(kChunkElems);
  for (uint64_t i = 0; i < kChunkElems; ++i) {
    const uint64_t bit_start = i * bits();
    const bool straddles = bit_start / 64 != (bit_start + bits() - 1) / 64;
    if (straddles) {
      codec.init(words.data(), i, mask());
      EXPECT_EQ(codec.get(words.data(), i), mask()) << "straddling index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, CodecTest, ::testing::Range(1u, 65u),
                         [](const auto& info) { return "bits" + std::to_string(info.param); });

// The paper's Fig. 8b worked example: two elements, 33 bits each.
TEST(CodecExampleTest, Fig8bThirtyThreeBitExample) {
  const auto& codec = CodecFor(33);
  std::vector<uint64_t> words(WordsPerChunk(33), 0);
  codec.init(words.data(), 0, 0x1FFFFFFFFULL);
  codec.init(words.data(), 1, 0x1FULL);
  EXPECT_EQ(codec.get(words.data(), 0), 0x1FFFFFFFFULL);
  EXPECT_EQ(codec.get(words.data(), 1), 0x1FULL);
  // First word: low 33 bits all ones, bits 33.. hold the low 31 bits of the
  // second element (0x1F) -> word0 = 0x1F << 33 | 0x1FFFFFFFF.
  EXPECT_EQ(words[0], (0x1FULL << 33) | 0x1FFFFFFFFULL);
  // Second word starts with the remaining 2 bits of element 1 (zero).
  EXPECT_EQ(words[1] & 0x3, 0u);
}

TEST(CodecDeathTest, RejectsOutOfRangeWidth) {
  EXPECT_DEATH(CodecFor(0), "bit width");
  EXPECT_DEATH(CodecFor(65), "bit width");
}

}  // namespace
}  // namespace sa::smart
