// Differential tests for the pushdown scan engine: every width 1..64, all
// six comparison operators, boundary constants (0, 1, mid, max, out of
// range), ragged lengths and unaligned sub-ranges — CountIf/SelectIf/
// FilteredSum checked element-for-element against a plain-vector oracle.
// The virtual scan path exercises normalization, zone-map classification,
// run coalescing and the calibrated match kernels in one pass; the chunk
// tests below additionally pin the AVX2 kernels to the scalar block ones.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "smart/dispatch.h"
#include "smart/parallel_ops.h"
#include "smart/predicate.h"
#include "smart/smart_array.h"

namespace sa::smart {
namespace {

constexpr CmpOp kAllOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                             CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};

// Ragged lengths around chunk boundaries plus larger odd sizes.
constexpr uint64_t kLengths[] = {1, 63, 64, 65, 129, 1000};

class PredicateScanTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  PredicateScanTest() : topo_(platform::Topology::Synthetic(1, 2)) {}

  std::unique_ptr<SmartArray> Fill(uint64_t n, uint64_t seed, std::vector<uint64_t>* oracle) {
    const uint32_t bits = GetParam();
    auto array = SmartArray::Allocate(n, PlacementSpec::OsDefault(), bits, topo_);
    const uint64_t mask = array->max_value();
    Xoshiro256 rng(seed * 64 + bits);
    oracle->resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      (*oracle)[i] = rng() & mask;
      array->Init(i, (*oracle)[i]);
    }
    return array;
  }

  // Boundary constants for this width, including out-of-range ones that
  // normalization must resolve in closed form.
  std::vector<uint64_t> Bounds() const {
    const uint64_t max = LowMask(GetParam());
    std::vector<uint64_t> bounds = {0, 1, max / 2, max};
    if (max > 1) bounds.push_back(max - 1);
    if (GetParam() < 64) {
      bounds.push_back(max + 1);
      bounds.push_back(~uint64_t{0});
    }
    return bounds;
  }

  static uint64_t OracleCount(const std::vector<uint64_t>& oracle, uint64_t begin,
                              uint64_t end, Predicate p) {
    uint64_t count = 0;
    for (uint64_t i = begin; i < end; ++i) count += Matches(p, oracle[i]) ? 1 : 0;
    return count;
  }

  static uint64_t OracleSum(const std::vector<uint64_t>& oracle, uint64_t begin,
                            uint64_t end, Predicate p) {
    uint64_t sum = 0;
    for (uint64_t i = begin; i < end; ++i) {
      if (Matches(p, oracle[i])) sum += oracle[i];
    }
    return sum;
  }

  platform::Topology topo_;
};

TEST_P(PredicateScanTest, CountIfMatchesOracle) {
  for (const uint64_t n : kLengths) {
    std::vector<uint64_t> oracle;
    auto array = Fill(n, n, &oracle);
    const uint64_t* replica = array->GetReplica(0);
    // Full range plus an unaligned sub-range straddling chunk boundaries.
    const uint64_t sub_begin = n / 3;
    const uint64_t sub_end = n - n / 5;
    for (const CmpOp op : kAllOps) {
      for (const uint64_t c : Bounds()) {
        const Predicate p{op, c};
        ASSERT_EQ(array->CountIf(replica, 0, n, p), OracleCount(oracle, 0, n, p))
            << "bits=" << GetParam() << " n=" << n << " op=" << ToString(op) << " c=" << c;
        ASSERT_EQ(array->CountIf(replica, sub_begin, sub_end, p),
                  OracleCount(oracle, sub_begin, sub_end, p))
            << "bits=" << GetParam() << " n=" << n << " op=" << ToString(op) << " c=" << c;
      }
    }
  }
}

TEST_P(PredicateScanTest, SelectIfBitmapMatchesOracle) {
  for (const uint64_t n : kLengths) {
    std::vector<uint64_t> oracle;
    auto array = Fill(n, n + 1, &oracle);
    const uint64_t* replica = array->GetReplica(0);
    const uint64_t sub_begin = n / 3;
    const uint64_t sub_end = n - n / 7;
    for (const CmpOp op : kAllOps) {
      for (const uint64_t c : Bounds()) {
        const Predicate p{op, c};
        std::vector<uint64_t> bitmap((n + kWordBits - 1) / kWordBits + 1, ~uint64_t{0});
        const uint64_t count = array->SelectIf(replica, sub_begin, sub_end, p, bitmap.data());
        ASSERT_EQ(count, OracleCount(oracle, sub_begin, sub_end, p))
            << "bits=" << GetParam() << " n=" << n << " op=" << ToString(op) << " c=" << c;
        uint64_t popcount = 0;
        for (uint64_t i = sub_begin; i < sub_end; ++i) {
          const uint64_t j = i - sub_begin;
          const bool bit = (bitmap[j / kWordBits] >> (j % kWordBits)) & 1;
          ASSERT_EQ(bit, Matches(p, oracle[i]))
              << "bits=" << GetParam() << " n=" << n << " op=" << ToString(op) << " c=" << c
              << " index=" << i;
          popcount += bit ? 1 : 0;
        }
        ASSERT_EQ(popcount, count);
        // Tail bits past the range must have been zeroed, not left stale.
        const uint64_t range = sub_end - sub_begin;
        if (range % kWordBits != 0) {
          const uint64_t tail = bitmap[range / kWordBits] >> (range % kWordBits);
          ASSERT_EQ(tail, 0u) << "stale tail bits, bits=" << GetParam() << " n=" << n;
        }
      }
    }
  }
}

TEST_P(PredicateScanTest, FilteredSumMatchesOracle) {
  for (const uint64_t n : kLengths) {
    std::vector<uint64_t> oracle;
    auto array = Fill(n, n + 2, &oracle);
    const uint64_t* replica = array->GetReplica(0);
    const uint64_t sub_begin = n / 4;
    for (const CmpOp op : kAllOps) {
      for (const uint64_t c : Bounds()) {
        const Predicate p{op, c};
        ASSERT_EQ(array->FilteredSum(replica, 0, n, p), OracleSum(oracle, 0, n, p))
            << "bits=" << GetParam() << " n=" << n << " op=" << ToString(op) << " c=" << c;
        ASSERT_EQ(array->FilteredSum(replica, sub_begin, n, p),
                  OracleSum(oracle, sub_begin, n, p))
            << "bits=" << GetParam() << " n=" << n << " op=" << ToString(op) << " c=" << c;
      }
    }
  }
}

// The AVX2 match/filtered-sum kernels must agree with the scalar block
// kernels word-for-word on every normalized (bound, is_eq, invert) shape.
// On widths without a v2 kernel (and off-AVX2 hosts) the v2 entry falls
// back to the block kernel, so the comparison is trivially true there.
TEST_P(PredicateScanTest, BlockAndV2ChunkKernelsAgree) {
  const uint64_t n = 8 * kChunkElems;
  std::vector<uint64_t> oracle;
  auto array = Fill(n, 7, &oracle);
  const uint64_t* replica = array->GetReplica(0);
  WithBits(GetParam(), [&](auto bits_const) -> int {
    constexpr uint32_t kBits = bits_const();
    using Codec = BitCompressedArray<kBits>;
    const uint64_t max = LowMask(kBits);
    const uint64_t test_bounds[] = {0, 1, max / 2, max};
    for (uint64_t chunk = 0; chunk < n / kChunkElems; ++chunk) {
      for (const uint64_t bound : test_bounds) {
        for (const bool is_eq : {false, true}) {
          for (const bool invert : {false, true}) {
            // EXPECT (not ASSERT): gtest's fatal assertions bare-return,
            // which a value-returning WithBits lambda cannot host. Bail on
            // the first divergence to keep the log readable.
            EXPECT_EQ(Codec::MatchMaskChunkV2(replica, chunk, bound, is_eq, invert),
                      Codec::MatchMaskChunkImpl(replica, chunk, bound, is_eq, invert))
                << "bits=" << kBits << " chunk=" << chunk << " bound=" << bound
                << " is_eq=" << is_eq << " invert=" << invert;
            EXPECT_EQ(Codec::FilteredSumChunkV2(replica, chunk, bound, is_eq, invert),
                      Codec::FilteredSumChunkImpl(replica, chunk, bound, is_eq, invert))
                << "bits=" << kBits << " chunk=" << chunk << " bound=" << bound
                << " is_eq=" << is_eq << " invert=" << invert;
            if (::testing::Test::HasFailure()) {
              return 0;
            }
          }
        }
      }
    }
    return 0;
  });
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PredicateScanTest, ::testing::Range(1u, 65u),
                         [](const ::testing::TestParamInfo<uint32_t>& param_info) {
                           return "bits" + std::to_string(param_info.param);
                         });

// ---- zone-map behavior (width-independent scenarios) ----

class ZoneMapTest : public ::testing::Test {
 protected:
  ZoneMapTest() : topo_(platform::Topology::Synthetic(1, 2)) {}
  platform::Topology topo_;
};

// Sorted data + a selective bound: the zone maps must answer most chunks
// without scanning them, and the answer must still match the oracle.
TEST_F(ZoneMapTest, SortedDataSkipsChunksOnSelectiveScan) {
  const uint64_t n = 64 * 1024;
  auto array = SmartArray::Allocate(n, PlacementSpec::OsDefault(), 20, topo_);
  // Bulk load: whole-chunk ownership gives exact zone bounds (element-wise
  // Init can only widen from the all-zeros birth state).
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) values[i] = i;
  PackRange(*array, 0, n, values.data());
  const uint64_t* replica = array->GetReplica(0);

  ScanStats stats;
  const uint64_t bound = n / 100;  // ~1% selectivity
  const uint64_t count = array->CountIf(replica, 0, n, {CmpOp::kLt, bound}, &stats);
  EXPECT_EQ(count, bound);
  EXPECT_EQ(stats.chunks_scanned + stats.chunks_skipped, n / kChunkElems);
  // All but the straddling chunk are decided by their [min,max] zone.
  EXPECT_LE(stats.chunks_scanned, 1u);
  EXPECT_GE(stats.chunks_skipped, n / kChunkElems - 1);

  // GE of the same bound is the complement and must skip equally well.
  ScanStats ge_stats;
  EXPECT_EQ(array->CountIf(replica, 0, n, {CmpOp::kGe, bound}, &ge_stats), n - bound);
  EXPECT_LE(ge_stats.chunks_scanned, 1u);
}

// Trivial predicates (constant outside the width's range) are answered in
// closed form: zero chunks touched, the whole range accounted as skipped.
TEST_F(ZoneMapTest, TrivialPredicateAnswersInClosedForm) {
  const uint64_t n = 10'000;
  auto array = SmartArray::Allocate(n, PlacementSpec::OsDefault(), 8, topo_);
  for (uint64_t i = 0; i < n; ++i) array->Init(i, i & 255);
  const uint64_t* replica = array->GetReplica(0);

  ScanStats stats;
  EXPECT_EQ(array->CountIf(replica, 0, n, {CmpOp::kLe, 400}, &stats), n);  // 400 > max(8 bits)
  EXPECT_EQ(stats.chunks_scanned, 0u);
  EXPECT_EQ(array->CountIf(replica, 0, n, {CmpOp::kGt, 400}), 0u);
  EXPECT_EQ(array->CountIf(replica, 0, n, {CmpOp::kLt, 0}), 0u);
  EXPECT_EQ(array->CountIf(replica, 0, n, {CmpOp::kGe, 0}), n);
  EXPECT_EQ(array->FilteredSum(replica, 0, n, {CmpOp::kGe, 0}),
            array->RangeSum(replica, 0, n));
}

// A write must widen the zone before the scan can observe the new value:
// after an Init/InitAtomic that exceeds the chunk's previous [min,max], a
// selective scan must find the written element — a stale zone map would
// skip its chunk and silently drop it.
TEST_F(ZoneMapTest, WritesInvalidateZonesBeforeScans) {
  const uint64_t n = 4096;
  auto array = SmartArray::Allocate(n, PlacementSpec::OsDefault(), 16, topo_);
  std::vector<uint64_t> values(n, 5);
  PackRange(*array, 0, n, values.data());  // exact [5,5] zones everywhere
  const uint64_t* replica = array->GetReplica(0);
  ScanStats baseline;
  ASSERT_EQ(array->CountIf(replica, 0, n, {CmpOp::kGt, 100}, &baseline), 0u);
  ASSERT_EQ(baseline.chunks_scanned, 0u);  // zones answer the whole scan

  array->Init(1234, 60'000);
  EXPECT_EQ(array->CountIf(replica, 0, n, {CmpOp::kGt, 100}), 1u);
  EXPECT_EQ(array->FilteredSum(replica, 0, n, {CmpOp::kGt, 100}), 60'000u);

  array->InitAtomic(77, 1);  // below the previous min
  EXPECT_EQ(array->CountIf(replica, 0, n, {CmpOp::kLt, 5}), 1u);
  std::vector<uint64_t> bitmap((n + kWordBits - 1) / kWordBits);
  ASSERT_EQ(array->SelectIf(replica, 0, n, {CmpOp::kLt, 5}, bitmap.data()), 1u);
  EXPECT_EQ((bitmap[77 / kWordBits] >> (77 % kWordBits)) & 1, 1u);
}

}  // namespace
}  // namespace sa::smart
