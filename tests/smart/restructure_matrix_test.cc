// Round-trip coverage of smart::Restructure across the placement × bits
// transitions the adaptation daemon performs: replicated <-> interleaved
// (and single-socket / os-default), widen / narrow / keep-width (bits = 0),
// plus the overflow contract (TryRestructure returns nullptr, Restructure
// aborts).
#include <gtest/gtest.h>

#include "common/random.h"
#include "smart/restructure.h"

namespace sa::smart {
namespace {

struct Transition {
  PlacementSpec from_placement;
  uint32_t from_bits;
  PlacementSpec to_placement;
  uint32_t to_bits;  // 0 = keep width
};

std::string TransitionName(const ::testing::TestParamInfo<Transition>& info) {
  const auto& t = info.param;
  auto placement = [](const PlacementSpec& p) {
    switch (p.kind) {
      case Placement::kOsDefault:
        return std::string("os");
      case Placement::kSingleSocket:
        return "single" + std::to_string(p.socket);
      case Placement::kInterleaved:
        return std::string("inter");
      case Placement::kReplicated:
        return std::string("repl");
    }
    return std::string("?");
  };
  return placement(t.from_placement) + "b" + std::to_string(t.from_bits) + "_to_" +
         placement(t.to_placement) + "b" + std::to_string(t.to_bits);
}

class RestructureMatrixTest : public ::testing::TestWithParam<Transition> {
 protected:
  RestructureMatrixTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}) {}

  platform::Topology topo_;
  rts::WorkerPool pool_;
};

TEST_P(RestructureMatrixTest, RoundTripsContentsOnEveryReplica) {
  const Transition& t = GetParam();
  // Length chosen to leave a partial final chunk (restructure must handle
  // the tail exactly like MapRange/kernels do).
  const uint64_t n = 4 * 64 * 64 + 17;
  auto source = SmartArray::Allocate(n, t.from_placement, t.from_bits, topo_);
  // Values must fit the *narrower* of the two widths so every transition in
  // the matrix is lossless; widen transitions then verify zero-extension.
  const uint32_t content_bits =
      std::min(t.from_bits, t.to_bits == 0 ? t.from_bits : t.to_bits);
  const uint64_t mask = LowMask(content_bits);
  Xoshiro256 rng(t.from_bits * 100 + t.to_bits);
  std::vector<uint64_t> oracle(n);
  for (uint64_t i = 0; i < n; ++i) {
    oracle[i] = rng() & mask;
    source->Init(i, oracle[i]);
  }

  const auto target = Restructure(pool_, *source, t.to_placement, t.to_bits, topo_);
  ASSERT_NE(target, nullptr);
  EXPECT_EQ(target->length(), n);
  EXPECT_EQ(target->bits(), t.to_bits == 0 ? t.from_bits : t.to_bits);
  EXPECT_EQ(target->placement(), t.to_placement);

  // Differential vs the oracle on every replica (a replicated target must
  // have initialized all copies, not just replica 0).
  for (int r = 0; r < target->num_replicas(); ++r) {
    const uint64_t* replica = target->GetReplica(r);
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(target->Get(i, replica), oracle[i])
          << "replica " << r << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DaemonTransitions, RestructureMatrixTest,
    ::testing::Values(
        // The §6 daemon moves: profiling shape (interleaved, 64) to the
        // chosen configuration and back.
        Transition{PlacementSpec::Interleaved(), 64, PlacementSpec::Replicated(), 10},
        Transition{PlacementSpec::Replicated(), 10, PlacementSpec::Interleaved(), 64},
        Transition{PlacementSpec::Interleaved(), 64, PlacementSpec::SingleSocket(0), 64},
        Transition{PlacementSpec::SingleSocket(1), 33, PlacementSpec::Interleaved(), 33},
        // Widen and narrow without changing placement.
        Transition{PlacementSpec::Interleaved(), 13, PlacementSpec::Interleaved(), 40},
        Transition{PlacementSpec::Interleaved(), 40, PlacementSpec::Interleaved(), 13},
        // bits = 0 keeps the source width.
        Transition{PlacementSpec::Replicated(), 17, PlacementSpec::Interleaved(), 0},
        Transition{PlacementSpec::OsDefault(), 21, PlacementSpec::Replicated(), 0},
        // Cross-word widths into and out of the native specializations.
        Transition{PlacementSpec::Interleaved(), 32, PlacementSpec::Replicated(), 7},
        Transition{PlacementSpec::Replicated(), 7, PlacementSpec::SingleSocket(0), 32}),
    TransitionName);

TEST(RestructureOverflowTest, TryRestructureReturnsNullWhenValuesDoNotFit) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  rts::WorkerPool pool(topo, rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false});
  auto source = SmartArray::Allocate(300, PlacementSpec::Interleaved(), 64, topo);
  for (uint64_t i = 0; i < 300; ++i) {
    source->Init(i, i);
  }
  source->Init(299, uint64_t{1} << 40);  // does not fit 12 bits
  EXPECT_EQ(TryRestructure(pool, *source, PlacementSpec::Replicated(), 12, topo), nullptr);
  // The fitting prefix restructures fine once the wide value is removed.
  source->Init(299, 7);
  const auto ok = TryRestructure(pool, *source, PlacementSpec::Replicated(), 12, topo);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->Get(299, ok->GetReplica(1)), 7u);
}

TEST(RestructureOverflowTest, RestructureAbortsOnOverflow) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  auto source = SmartArray::Allocate(100, PlacementSpec::Interleaved(), 33, topo);
  source->Init(42, uint64_t{1} << 30);
  // Pool built inside the death statement: the forked child only inherits
  // the calling thread, so an outer pool's RunOnAll would hang there.
  EXPECT_DEATH(
      {
        rts::WorkerPool pool(topo,
                             rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false});
        Restructure(pool, *source, PlacementSpec::Replicated(), 8, topo);
      },
      "width");
}

}  // namespace
}  // namespace sa::smart
