// Regression tests for the hardened C-ABI boundary: out-of-range indices,
// out-of-range chunk numbers, zero/over-wide bit widths and width mismatches
// must fail fast with a diagnostic instead of corrupting the packed words.
// Foreign runtimes pass these arguments as plain longs, so every check here
// is an always-on SA_CHECK, not a debug assert.
#include <gtest/gtest.h>

#include "smart/entry_points.h"

namespace {

class EntryPointsHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override { saSetDefaultTopology(2, 4); }
  void TearDown() override { saSetDefaultTopology(0, 0); }
};

TEST_F(EntryPointsHardeningTest, AllocateRejectsBadShapes) {
  EXPECT_DEATH(saArrayAllocate(0, 0, 0, -1, 13), "empty");
  EXPECT_DEATH(saArrayAllocate(100, 0, 0, -1, 0), "1..64");
  EXPECT_DEATH(saArrayAllocate(100, 0, 0, -1, 65), "1..64");
}

TEST_F(EntryPointsHardeningTest, GetAndInitRejectOutOfRangeIndex) {
  void* sa = saArrayAllocate(130, 0, 0, -1, 13);
  EXPECT_DEATH(saArrayGet(sa, 130), "out of range");
  EXPECT_DEATH(saArrayGet(sa, ~uint64_t{0}), "out of range");
  EXPECT_DEATH(saArrayInit(sa, 130, 1), "out of range");
  saArrayFree(sa);
}

TEST_F(EntryPointsHardeningTest, UnpackRejectsOutOfRangeChunk) {
  void* sa = saArrayAllocate(130, 0, 0, -1, 13);  // 3 chunks (2 full + 1 partial)
  uint64_t out[64];
  saArrayUnpack(sa, 2, out);  // last (partial) chunk is legal
  EXPECT_DEATH(saArrayUnpack(sa, 3, out), "out of range");
  saArrayFree(sa);
}

TEST_F(EntryPointsHardeningTest, WithBitsPathsRejectWidthMismatch) {
  void* sa = saArrayAllocate(130, 0, 0, -1, 13);
  EXPECT_DEATH(saArrayGetWithBits(sa, 0, 14), "width");
  EXPECT_DEATH(saArrayGetWithBits(sa, 0, 65), "width");
  EXPECT_DEATH(saArrayInitWithBits(sa, 0, 1, 12), "width");
  EXPECT_DEATH(saArrayGetWithBits(sa, 130, 13), "out of range");
  EXPECT_DEATH(saArrayInitWithBits(sa, 130, 1, 13), "out of range");
  saArrayFree(sa);
}

TEST_F(EntryPointsHardeningTest, IteratorRejectsOutOfRangePositions) {
  void* sa = saArrayAllocate(130, 0, 0, -1, 13);
  // One-past-the-end is a legal resting position...
  void* it = saIterAllocate(sa, 130);
  saIterReset(it, 0);
  // ...but anything beyond is not.
  EXPECT_DEATH(saIterReset(it, 131), "out of range");
  EXPECT_DEATH(saIterAllocate(sa, 131), "out of range");
  saIterFree(it);
  saArrayFree(sa);
}

TEST_F(EntryPointsHardeningTest, ScanEntryPointsRejectBadRangesAndOps) {
  void* sa = saArrayAllocate(130, 0, 0, -1, 13);
  uint64_t bitmap[3] = {0, 0, 0};
  EXPECT_DEATH(saArrayCountIf(sa, 0, 131, 2, 5), "out of bounds");
  EXPECT_DEATH(saArrayCountIf(sa, 100, 99, 2, 5), "out of bounds");
  EXPECT_DEATH(saArrayCountIf(sa, 0, 130, 6, 5), "comparison operator");
  EXPECT_DEATH(saArrayCountIf(sa, 0, 130, -1, 5), "comparison operator");
  EXPECT_DEATH(saArrayFilteredSum(sa, 0, 131, 2, 5), "out of bounds");
  EXPECT_DEATH(saArrayFilteredSum(sa, 0, 130, 7, 5), "comparison operator");
  EXPECT_DEATH(saArraySelectIf(sa, 0, 131, 2, 5, bitmap, 3), "out of bounds");
  EXPECT_DEATH(saArraySelectIf(sa, 0, 130, 6, 5, bitmap, 3), "comparison operator");
  saArrayFree(sa);
}

TEST_F(EntryPointsHardeningTest, SelectIfRejectsUndersizedOrNullBitmap) {
  void* sa = saArrayAllocate(130, 0, 0, -1, 13);
  uint64_t bitmap[3] = {0, 0, 0};
  // 130 elements need 3 words; 2 is one short.
  EXPECT_DEATH(saArraySelectIf(sa, 0, 130, 2, 5, bitmap, 2), "too small");
  EXPECT_DEATH(saArraySelectIf(sa, 0, 130, 2, 5, nullptr, 3), "null");
  // 65 elements starting mid-array need 2 words, so 2 is legal...
  saArraySelectIf(sa, 60, 125, 2, 5, bitmap, 2);
  // ...and 1 is not.
  EXPECT_DEATH(saArraySelectIf(sa, 60, 125, 2, 5, bitmap, 1), "too small");
  // The empty range needs no buffer at all and returns zero matches.
  EXPECT_EQ(saArraySelectIf(sa, 7, 7, 2, 5, nullptr, 0), 0u);
  saArrayFree(sa);
}

TEST_F(EntryPointsHardeningTest, InRangeAccessStillWorksAfterHardening) {
  void* sa = saArrayAllocate(130, 0, 0, -1, 13);
  for (uint64_t i = 0; i < 130; ++i) {
    saArrayInit(sa, i, i);
  }
  EXPECT_EQ(saArrayGet(sa, 129), 129u);
  EXPECT_EQ(saArrayGetWithBits(sa, 129, 13), 129u);
  void* it = saIterAllocate(sa, 128);
  EXPECT_EQ(saIterGet(it), 128u);
  saIterNext(it);
  EXPECT_EQ(saIterGet(it), 129u);
  saIterFree(it);
  saArrayFree(sa);
}

}  // namespace
