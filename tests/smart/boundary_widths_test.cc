// Exhaustive last-partial-chunk coverage: every width 1..64 at lengths that
// are not multiples of the 64-element chunk, so the final chunk is partial.
// The packed fast paths (whole-chunk unpack, unrolled decode, AVX2 sums)
// all special-case the ragged tail; these tests pin get/unpack/SumRange and
// iterator reset behavior right at that edge for every codec instantiation.
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "platform/topology.h"
#include "smart/dispatch.h"
#include "smart/iterator.h"
#include "smart/smart_array.h"

namespace {

using sa::LowMask;
using sa::SplitMix64;
using sa::platform::Topology;
using sa::smart::CodecFor;
using sa::smart::PlacementSpec;
using sa::smart::SmartArray;
using sa::smart::SmartArrayIterator;

// Deterministic per-(width, index) pattern with high bits set often, so
// masking and cross-word spills are exercised at every width.
uint64_t Pattern(uint32_t bits, uint64_t i) {
  return SplitMix64(i * 64 + bits) & LowMask(bits);
}

class BoundaryWidthsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Topology topology_ = Topology::Synthetic(2, 4);
};

TEST_P(BoundaryWidthsTest, GetAndCodecGetAtEveryWidth) {
  const uint64_t length = GetParam();
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    auto array = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
    for (uint64_t i = 0; i < length; ++i) {
      array->Init(i, Pattern(bits, i));
    }
    const uint64_t* replica = array->GetReplica(0);
    for (uint64_t i = 0; i < length; ++i) {
      ASSERT_EQ(array->Get(i, replica), Pattern(bits, i)) << "bits=" << bits << " i=" << i;
      ASSERT_EQ(CodecFor(bits).get(replica, i), Pattern(bits, i))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST_P(BoundaryWidthsTest, UnpackOfFinalPartialChunkZeroPadsAtEveryWidth) {
  const uint64_t length = GetParam();
  const uint64_t last_chunk = (length - 1) / 64;
  const uint64_t tail = length - last_chunk * 64;  // elements in the final chunk
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    auto array = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
    for (uint64_t i = 0; i < length; ++i) {
      array->Init(i, Pattern(bits, i));
    }
    uint64_t out[64];
    array->Unpack(last_chunk, array->GetReplica(0), out);
    for (uint64_t slot = 0; slot < 64; ++slot) {
      const uint64_t want = slot < tail ? Pattern(bits, last_chunk * 64 + slot) : 0;
      ASSERT_EQ(out[slot], want) << "bits=" << bits << " slot=" << slot;
    }
  }
}

TEST_P(BoundaryWidthsTest, SumRangeAcrossTheRaggedTailAtEveryWidth) {
  const uint64_t length = GetParam();
  const uint64_t tail_start = (length - 1) / 64 * 64;
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    auto array = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
    std::vector<uint64_t> reference(length);
    for (uint64_t i = 0; i < length; ++i) {
      reference[i] = Pattern(bits, i);
      array->Init(i, reference[i]);
    }
    const uint64_t* replica = array->GetReplica(0);
    // Ranges chosen to straddle the last chunk boundary from every side.
    const uint64_t begins[] = {0, tail_start, tail_start > 0 ? tail_start - 1 : 0, length - 1};
    for (const uint64_t begin : begins) {
      uint64_t want = 0;
      for (uint64_t i = begin; i < length; ++i) {
        want += reference[i];
      }
      ASSERT_EQ(CodecFor(bits).sum_range(replica, begin, length), want)
          << "bits=" << bits << " begin=" << begin;
    }
    ASSERT_EQ(CodecFor(bits).sum_range(replica, length, length), 0u) << "bits=" << bits;
  }
}

TEST_P(BoundaryWidthsTest, IteratorResetIntoFinalChunkAtEveryWidth) {
  const uint64_t length = GetParam();
  const uint64_t tail_start = (length - 1) / 64 * 64;
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    auto array = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
    for (uint64_t i = 0; i < length; ++i) {
      array->Init(i, Pattern(bits, i));
    }
    auto it = SmartArrayIterator::Allocate(*array, 0, 0);
    // Scan forward into the tail, then reset back before the chunk edge: the
    // buffered chunk must be refreshed, not reused.
    for (uint64_t i = 0; i < length; ++i, it->Next()) {
      ASSERT_EQ(it->Get(), Pattern(bits, i)) << "bits=" << bits << " i=" << i;
    }
    const uint64_t reset_points[] = {tail_start, length - 1, 0};
    for (const uint64_t start : reset_points) {
      it->Reset(start);
      for (uint64_t i = start; i < length; ++i, it->Next()) {
        ASSERT_EQ(it->Get(), Pattern(bits, i)) << "bits=" << bits << " reset=" << start;
      }
    }
  }
}

// 1: a single-element chunk; 63/65: one off either side of a chunk; 127/129:
// one off a two-chunk boundary; 130: the paper-style small ragged array.
INSTANTIATE_TEST_SUITE_P(RaggedLengths, BoundaryWidthsTest,
                         ::testing::Values(uint64_t{1}, uint64_t{63}, uint64_t{65},
                                           uint64_t{127}, uint64_t{129}, uint64_t{130}));

}  // namespace
