// Iterator semantics: the virtual hierarchy of Fig. 9 and the typed
// compile-time iterators must all agree with element-wise Get.
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "smart/dispatch.h"
#include "smart/iterator.h"

namespace sa::smart {
namespace {

class IteratorTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    topo_ = std::make_unique<platform::Topology>(platform::Topology::Synthetic(2, 2));
    array_ = SmartArray::Allocate(kN, PlacementSpec::Interleaved(), GetParam(), *topo_);
    Xoshiro256 rng(GetParam());
    expected_.resize(kN);
    for (uint64_t i = 0; i < kN; ++i) {
      expected_[i] = rng() & array_->max_value();
      array_->Init(i, expected_[i]);
    }
  }

  static constexpr uint64_t kN = 777;  // several chunks + partial tail
  std::unique_ptr<platform::Topology> topo_;
  std::unique_ptr<SmartArray> array_;
  std::vector<uint64_t> expected_;
};

TEST_P(IteratorTest, VirtualIteratorScansAllElements) {
  auto it = SmartArrayIterator::Allocate(*array_, 0, /*socket=*/0);
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(it->Get(), expected_[i]) << "index " << i;
    it->Next();
  }
}

TEST_P(IteratorTest, ConcreteSubclassMatchesWidth) {
  auto it = SmartArrayIterator::Allocate(*array_, 0, 0);
  switch (GetParam()) {
    case 64:
      EXPECT_NE(dynamic_cast<Uncompressed64Iterator*>(it.get()), nullptr);
      break;
    case 32:
      EXPECT_NE(dynamic_cast<Uncompressed32Iterator*>(it.get()), nullptr);
      break;
    default:
      EXPECT_NE(dynamic_cast<CompressedIterator*>(it.get()), nullptr);
  }
}

TEST_P(IteratorTest, ResetRepositionsMidChunk) {
  auto it = SmartArrayIterator::Allocate(*array_, 0, 0);
  for (const uint64_t target : {uint64_t{100}, uint64_t{3}, uint64_t{700}, uint64_t{63},
                                uint64_t{64}, uint64_t{65}}) {
    it->Reset(target);
    EXPECT_EQ(it->index(), target);
    EXPECT_EQ(it->Get(), expected_[target]) << "reset to " << target;
  }
}

TEST_P(IteratorTest, StartAtArbitraryOffsetLikeLoopBatches) {
  // Callisto batches start iterators at their batch's first index (§4.3).
  for (const uint64_t start : {uint64_t{1}, uint64_t{63}, uint64_t{64}, uint64_t{129}}) {
    auto it = SmartArrayIterator::Allocate(*array_, start, 0);
    for (uint64_t i = start; i < std::min(start + 130, kN); ++i) {
      EXPECT_EQ(it->Get(), expected_[i]) << "start " << start << " index " << i;
      it->Next();
    }
  }
}

TEST_P(IteratorTest, TypedIteratorAgreesWithVirtual) {
  WithBits(GetParam(), [&](auto bits_const) {
    constexpr uint32_t kBits = bits_const();
    TypedIterator<kBits> typed(array_->GetReplica(0), 0);
    auto virt = SmartArrayIterator::Allocate(*array_, 0, 0);
    for (uint64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(typed.Get(), virt->Get()) << "index " << i;
      typed.Next();
      virt->Next();
    }
    return 0;
  });
}

TEST_P(IteratorTest, IteratorSumMatchesReference) {
  uint64_t want = 0;
  for (const uint64_t v : expected_) {
    want += v;
  }
  auto it = SmartArrayIterator::Allocate(*array_, 0, 0);
  uint64_t got = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    got += it->Get();
    it->Next();
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, IteratorTest, ::testing::Range(1u, 65u),
                         [](const auto& info) { return "bits" + std::to_string(info.param); });

TEST(IteratorReplicaTest, IteratorReadsSocketLocalReplica) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  auto array = SmartArray::Allocate(64, PlacementSpec::Replicated(), 64, topo);
  array->Init(7, 1234);
  // Corrupt replica 1 directly; the socket-0 iterator must not see it.
  array->MutableReplica(1)[7] = 999;
  auto it0 = SmartArrayIterator::Allocate(*array, 7, 0);
  auto it1 = SmartArrayIterator::Allocate(*array, 7, 1);
  EXPECT_EQ(it0->Get(), 1234u);
  EXPECT_EQ(it1->Get(), 999u);
}

}  // namespace
}  // namespace sa::smart
