// C-ABI entry-point tests: the boundary a foreign runtime (the paper's Java
// thin API) talks to.
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/random.h"
#include "smart/entry_points.h"

namespace {

class EntryPointsTest : public ::testing::Test {
 protected:
  void SetUp() override { saSetDefaultTopology(2, 4); }
  void TearDown() override { saSetDefaultTopology(0, 0); }
};

TEST_F(EntryPointsTest, AllocateReportsProperties) {
  void* sa = saArrayAllocate(1000, /*replicated=*/0, /*interleaved=*/1, /*pinned=*/-1, 33);
  ASSERT_NE(sa, nullptr);
  EXPECT_EQ(saArrayGetLength(sa), 1000u);
  EXPECT_EQ(saArrayGetBits(sa), 33u);
  EXPECT_EQ(saArrayIsReplicated(sa), 0);
  EXPECT_GT(saArrayFootprintBytes(sa), 0u);
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, TopologyControlsSocketCount) {
  EXPECT_EQ(saGetNumSockets(), 2);
  saSetDefaultTopology(4, 2);
  EXPECT_EQ(saGetNumSockets(), 4);
}

TEST_F(EntryPointsTest, InitGetRoundTripVirtualPath) {
  void* sa = saArrayAllocate(300, 0, 0, -1, 17);
  for (uint64_t i = 0; i < 300; ++i) {
    saArrayInit(sa, i, i & ((1u << 17) - 1));
  }
  for (uint64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(saArrayGet(sa, i), i & ((1u << 17) - 1));
  }
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, WithBitsVariantsMatchVirtualPath) {
  for (const uint32_t bits : {5u, 32u, 33u, 64u}) {
    void* sa = saArrayAllocate(256, 0, 0, -1, bits);
    sa::Xoshiro256 rng(bits);
    const uint64_t mask = sa::LowMask(bits);
    for (uint64_t i = 0; i < 256; ++i) {
      saArrayInitWithBits(sa, i, rng() & mask, bits);
    }
    for (uint64_t i = 0; i < 256; ++i) {
      EXPECT_EQ(saArrayGetWithBits(sa, i, bits), saArrayGet(sa, i)) << "bits " << bits;
    }
    saArrayFree(sa);
  }
}

TEST_F(EntryPointsTest, ReplicatedArrayThroughAbi) {
  void* sa = saArrayAllocate(128, /*replicated=*/1, 0, -1, 12);
  EXPECT_EQ(saArrayIsReplicated(sa), 1);
  saArrayInit(sa, 100, 3000);
  EXPECT_EQ(saArrayGet(sa, 100), 3000u);
  const uint64_t* replica = saArrayGetReplica(sa);
  ASSERT_NE(replica, nullptr);
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, IteratorAbiScansCorrectly) {
  const uint32_t bits = 21;
  void* sa = saArrayAllocate(200, 0, 1, -1, bits);
  for (uint64_t i = 0; i < 200; ++i) {
    saArrayInit(sa, i, (3 * i) & sa::LowMask(bits));
  }
  void* it = saIterAllocate(sa, 0);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(saIterGet(it), (3 * i) & sa::LowMask(bits)) << "index " << i;
    saIterNext(it);
  }
  // Reset and rescan with the bits-parameterized fast path (Function 4).
  saIterReset(it, 0);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(saIterGetWithBits(it, bits), (3 * i) & sa::LowMask(bits));
    saIterNextWithBits(it, bits);
  }
  saIterFree(it);
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, UnpackAbiDecodesChunk) {
  void* sa = saArrayAllocate(64, 0, 0, -1, 9);
  for (uint64_t i = 0; i < 64; ++i) {
    saArrayInit(sa, i, i * 7 % 512);
  }
  uint64_t out[64];
  saArrayUnpack(sa, 0, out);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i], i * 7 % 512);
  }
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, PlacementCombinationIsRejected) {
  EXPECT_DEATH(saArrayAllocate(10, /*replicated=*/1, /*interleaved=*/1, -1, 64), "combined");
  EXPECT_DEATH(saArrayAllocate(10, /*replicated=*/1, 0, /*pinned=*/0, 64), "combined");
}

}  // namespace
