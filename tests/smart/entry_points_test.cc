// C-ABI entry-point tests: the boundary a foreign runtime (the paper's Java
// thin API) talks to.
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "smart/entry_points.h"
#include "smart/parallel_ops.h"

namespace {

class EntryPointsTest : public ::testing::Test {
 protected:
  void SetUp() override { saSetDefaultTopology(2, 4); }
  void TearDown() override { saSetDefaultTopology(0, 0); }
};

TEST_F(EntryPointsTest, AllocateReportsProperties) {
  void* sa = saArrayAllocate(1000, /*replicated=*/0, /*interleaved=*/1, /*pinned=*/-1, 33);
  ASSERT_NE(sa, nullptr);
  EXPECT_EQ(saArrayGetLength(sa), 1000u);
  EXPECT_EQ(saArrayGetBits(sa), 33u);
  EXPECT_EQ(saArrayIsReplicated(sa), 0);
  EXPECT_GT(saArrayFootprintBytes(sa), 0u);
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, TopologyControlsSocketCount) {
  EXPECT_EQ(saGetNumSockets(), 2);
  saSetDefaultTopology(4, 2);
  EXPECT_EQ(saGetNumSockets(), 4);
}

TEST_F(EntryPointsTest, InitGetRoundTripVirtualPath) {
  void* sa = saArrayAllocate(300, 0, 0, -1, 17);
  for (uint64_t i = 0; i < 300; ++i) {
    saArrayInit(sa, i, i & ((1u << 17) - 1));
  }
  for (uint64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(saArrayGet(sa, i), i & ((1u << 17) - 1));
  }
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, WithBitsVariantsMatchVirtualPath) {
  for (const uint32_t bits : {5u, 32u, 33u, 64u}) {
    void* sa = saArrayAllocate(256, 0, 0, -1, bits);
    sa::Xoshiro256 rng(bits);
    const uint64_t mask = sa::LowMask(bits);
    for (uint64_t i = 0; i < 256; ++i) {
      saArrayInitWithBits(sa, i, rng() & mask, bits);
    }
    for (uint64_t i = 0; i < 256; ++i) {
      EXPECT_EQ(saArrayGetWithBits(sa, i, bits), saArrayGet(sa, i)) << "bits " << bits;
    }
    saArrayFree(sa);
  }
}

TEST_F(EntryPointsTest, ReplicatedArrayThroughAbi) {
  void* sa = saArrayAllocate(128, /*replicated=*/1, 0, -1, 12);
  EXPECT_EQ(saArrayIsReplicated(sa), 1);
  saArrayInit(sa, 100, 3000);
  EXPECT_EQ(saArrayGet(sa, 100), 3000u);
  const uint64_t* replica = saArrayGetReplica(sa);
  ASSERT_NE(replica, nullptr);
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, IteratorAbiScansCorrectly) {
  const uint32_t bits = 21;
  void* sa = saArrayAllocate(200, 0, 1, -1, bits);
  for (uint64_t i = 0; i < 200; ++i) {
    saArrayInit(sa, i, (3 * i) & sa::LowMask(bits));
  }
  void* it = saIterAllocate(sa, 0);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(saIterGet(it), (3 * i) & sa::LowMask(bits)) << "index " << i;
    saIterNext(it);
  }
  // Reset and rescan with the bits-parameterized fast path (Function 4).
  saIterReset(it, 0);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(saIterGetWithBits(it, bits), (3 * i) & sa::LowMask(bits));
    saIterNextWithBits(it, bits);
  }
  saIterFree(it);
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, UnpackAbiDecodesChunk) {
  void* sa = saArrayAllocate(64, 0, 0, -1, 9);
  for (uint64_t i = 0; i < 64; ++i) {
    saArrayInit(sa, i, i * 7 % 512);
  }
  uint64_t out[64];
  saArrayUnpack(sa, 0, out);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i], i * 7 % 512);
  }
  saArrayFree(sa);
}

TEST_F(EntryPointsTest, PlacementCombinationIsRejected) {
  EXPECT_DEATH(saArrayAllocate(10, /*replicated=*/1, /*interleaved=*/1, -1, 64), "combined");
  EXPECT_DEATH(saArrayAllocate(10, /*replicated=*/1, 0, /*pinned=*/0, 64), "combined");
}

TEST_F(EntryPointsTest, SumRangeMatchesParallelSumAllWidths) {
  // The chunk-kernel entry point must agree bit-for-bit (mod 2^64) with the
  // native ParallelSum for every width — both sit on the same block kernels.
  const auto topo = sa::platform::Topology::Synthetic(2, 4);
  sa::rts::WorkerPool pool(topo,
                           sa::rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  const uint64_t n = 5000;
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    void* sa = saArrayAllocate(n, 0, /*interleaved=*/1, -1, bits);
    const uint64_t mask = sa::LowMask(bits);
    sa::Xoshiro256 rng(bits);
    uint64_t want = 0;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t value = rng() & mask;
      saArrayInit(sa, i, value);
      want += value;
    }
    const auto* array = static_cast<const sa::smart::SmartArray*>(sa);
    EXPECT_EQ(saArraySumRange(sa, 0, n), want) << "bits " << bits;
    EXPECT_EQ(saArraySumRange(sa, 0, n), sa::smart::ParallelSum(pool, *array))
        << "bits " << bits;
    // Ragged sub-range: unaligned begin and end.
    uint64_t want_sub = 0;
    for (uint64_t i = 65; i < 4999; ++i) {
      want_sub += saArrayGet(sa, i);
    }
    EXPECT_EQ(saArraySumRange(sa, 65, 4999), want_sub) << "bits " << bits;
    saArrayFree(sa);
  }
}

TEST_F(EntryPointsTest, Sum2RangeMatchesFusedParallelSum) {
  const auto topo = sa::platform::Topology::Synthetic(2, 4);
  sa::rts::WorkerPool pool(topo,
                           sa::rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  const uint64_t n = 4000;
  for (const uint32_t bits : {1u, 7u, 13u, 17u, 32u, 33u, 64u}) {
    void* sa1 = saArrayAllocate(n, 0, 1, -1, bits);
    void* sa2 = saArrayAllocate(n, 0, 1, -1, bits);
    const uint64_t mask = sa::LowMask(bits);
    for (uint64_t i = 0; i < n; ++i) {
      saArrayInit(sa1, i, sa::SplitMix64(i) & mask);
      saArrayInit(sa2, i, sa::SplitMix64(i ^ 0xfeed) & mask);
    }
    const auto* a1 = static_cast<const sa::smart::SmartArray*>(sa1);
    const auto* a2 = static_cast<const sa::smart::SmartArray*>(sa2);
    EXPECT_EQ(saArraySum2Range(sa1, sa2, 0, n), sa::smart::ParallelSum2(pool, *a1, *a2))
        << "bits " << bits;
    EXPECT_EQ(saArraySum2Range(sa1, sa2, 63, 65),
              saArrayGet(sa1, 63) + saArrayGet(sa2, 63) + saArrayGet(sa1, 64) +
                  saArrayGet(sa2, 64))
        << "bits " << bits;
    saArrayFree(sa1);
    saArrayFree(sa2);
  }
}

TEST_F(EntryPointsTest, ScanAbiMatchesScalarOracle) {
  const uint64_t n = 3000;
  for (const uint32_t bits : {1u, 9u, 13u, 33u, 64u}) {
    void* sa = saArrayAllocate(n, 0, 0, -1, bits);
    const uint64_t mask = sa::LowMask(bits);
    std::vector<uint64_t> oracle(n);
    for (uint64_t i = 0; i < n; ++i) {
      oracle[i] = sa::SplitMix64(i * 3 + bits) & mask;
      saArrayInit(sa, i, oracle[i]);
    }
    const uint64_t c = mask / 2;
    // op 2 is <, op 0 is ==, op 5 is >= in the stable ABI numbering.
    uint64_t want_lt_count = 0, want_lt_sum = 0, want_eq = 0;
    for (uint64_t i = 100; i < 2900; ++i) {
      if (oracle[i] < c) {
        ++want_lt_count;
        want_lt_sum += oracle[i];
      }
      if (oracle[i] == c) ++want_eq;
    }
    EXPECT_EQ(saArrayCountIf(sa, 100, 2900, 2, c), want_lt_count) << "bits " << bits;
    EXPECT_EQ(saArrayFilteredSum(sa, 100, 2900, 2, c), want_lt_sum) << "bits " << bits;
    EXPECT_EQ(saArrayCountIf(sa, 100, 2900, 0, c), want_eq) << "bits " << bits;

    std::vector<uint64_t> bitmap((2900 - 100 + 63) / 64);
    EXPECT_EQ(saArraySelectIf(sa, 100, 2900, 2, c, bitmap.data(), bitmap.size()),
              want_lt_count)
        << "bits " << bits;
    for (uint64_t i = 100; i < 2900; ++i) {
      const uint64_t j = i - 100;
      ASSERT_EQ((bitmap[j / 64] >> (j % 64)) & 1, oracle[i] < c ? 1u : 0u)
          << "bits " << bits << " index " << i;
    }
    saArrayFree(sa);
  }
}

}  // namespace
