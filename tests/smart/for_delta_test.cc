// Frame-of-reference + delta encoding: build from a bit-packed source,
// round-trip every accessor, run the pushdown scans against an oracle, and
// restructure in and out of the encoding. FoR stores per-chunk minima as
// frames and packs only the deltas, so clustered data (per-chunk locality)
// compresses well below its global width.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "rts/worker_pool.h"
#include "smart/for_delta.h"
#include "smart/parallel_ops.h"
#include "smart/restructure.h"
#include "smart/smart_array.h"

namespace sa::smart {
namespace {

class ForDeltaTest : public ::testing::Test {
 protected:
  ForDeltaTest()
      : topo_(platform::Topology::Synthetic(1, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false}) {}

  // Clustered data: chunk c holds values in [c * 1000, c * 1000 + 255], so
  // frames grow with the chunk index while deltas stay 8-bit.
  std::unique_ptr<SmartArray> ClusteredSource(uint64_t n, std::vector<uint64_t>* oracle) {
    auto array = SmartArray::Allocate(n, PlacementSpec::OsDefault(), 32, topo_);
    Xoshiro256 rng(n);
    oracle->resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      (*oracle)[i] = (i / kChunkElems) * 1000 + (rng() & 255);
    }
    PackRange(*array, 0, n, oracle->data());
    return array;
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
};

TEST_F(ForDeltaTest, BuildRoundTripsEveryAccessor) {
  const uint64_t n = 10'000;
  std::vector<uint64_t> oracle;
  auto source = ClusteredSource(n, &oracle);
  auto fd = ForDeltaArray::TryBuild(*source, PlacementSpec::OsDefault(), source->bits(), topo_);
  ASSERT_NE(fd, nullptr);
  EXPECT_EQ(fd->encoding(), Encoding::kForDelta);
  EXPECT_EQ(fd->bits(), 32u);
  // 255-wide deltas pack in 8 bits regardless of the frame magnitude.
  EXPECT_LE(fd->storage_bits(), 8u);
  EXPECT_LT(fd->footprint_bytes(), source->footprint_bytes());

  const uint64_t* replica = fd->GetReplica(0);
  for (uint64_t i = 0; i < n; i = (i < 200 ? i + 1 : i + 137)) {
    ASSERT_EQ(fd->Get(i, replica), oracle[i]) << "index " << i;
  }

  uint64_t want = 0;
  for (uint64_t i = 100; i < 9000; ++i) want += oracle[i];
  EXPECT_EQ(fd->RangeSum(replica, 100, 9000), want);

  std::vector<uint64_t> decoded(500);
  fd->RangeUnpack(replica, 700, 1200, decoded.data());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(decoded[i], oracle[700 + i]) << "index " << 700 + i;
  }
}

TEST_F(ForDeltaTest, ScansMatchOracleAcrossChunkFrames) {
  const uint64_t n = 10'000;
  std::vector<uint64_t> oracle;
  auto source = ClusteredSource(n, &oracle);
  auto fd = ForDeltaArray::TryBuild(*source, PlacementSpec::OsDefault(), source->bits(), topo_);
  ASSERT_NE(fd, nullptr);
  const uint64_t* replica = fd->GetReplica(0);

  // Bounds at frame seams: inside chunk 0's range, between chunks, above
  // every frame — each chunk translates the predicate into its own delta
  // domain, so these exercise kNone/kAll collapses and genuine scans.
  const uint64_t test_bounds[] = {0, 100, 1000, 50'000, 200'000, ~uint64_t{0}};
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (const CmpOp op : ops) {
    for (const uint64_t c : test_bounds) {
      const Predicate p{op, c};
      uint64_t want_count = 0, want_sum = 0;
      for (uint64_t i = 0; i < n; ++i) {
        if (Matches(p, oracle[i])) {
          ++want_count;
          want_sum += oracle[i];
        }
      }
      ASSERT_EQ(fd->CountIf(replica, 0, n, p), want_count)
          << "op=" << ToString(op) << " c=" << c;
      ASSERT_EQ(fd->FilteredSum(replica, 0, n, p), want_sum)
          << "op=" << ToString(op) << " c=" << c;
      std::vector<uint64_t> bitmap((n + kWordBits - 1) / kWordBits);
      ASSERT_EQ(fd->SelectIf(replica, 0, n, p, bitmap.data()), want_count);
      for (uint64_t i = 0; i < n; ++i) {
        ASSERT_EQ((bitmap[i / kWordBits] >> (i % kWordBits)) & 1,
                  Matches(p, oracle[i]) ? 1u : 0u)
            << "op=" << ToString(op) << " c=" << c << " index=" << i;
      }
    }
  }

  // Selective scans skip chunks through the (absolute) zone maps.
  ScanStats stats;
  fd->CountIf(replica, 0, n, {CmpOp::kLt, 500}, &stats);
  EXPECT_GT(stats.chunks_skipped, 0u);
}

TEST_F(ForDeltaTest, EstimateDeltaRatioRewardsClusteredData) {
  const uint64_t n = 10'000;
  std::vector<uint64_t> oracle;
  auto source = ClusteredSource(n, &oracle);
  // Chunk spans are ~255 out of 32-bit values: the ratio must be far below 1.
  EXPECT_LT(ForDeltaArray::EstimateDeltaRatio(*source), 0.5);

  // Uniform random data spans the whole width per chunk: no FoR win.
  auto uniform = SmartArray::Allocate(n, PlacementSpec::OsDefault(), 32, topo_);
  std::vector<uint64_t> values(n);
  Xoshiro256 rng(99);
  for (uint64_t i = 0; i < n; ++i) values[i] = rng() & LowMask(32);
  PackRange(*uniform, 0, n, values.data());
  EXPECT_GT(ForDeltaArray::EstimateDeltaRatio(*uniform), 0.8);
}

TEST_F(ForDeltaTest, WritesInsideTheFrameUpdateScans) {
  const uint64_t n = 1000;
  std::vector<uint64_t> oracle;
  auto source = ClusteredSource(n, &oracle);
  auto fd = ForDeltaArray::TryBuild(*source, PlacementSpec::OsDefault(), source->bits(), topo_);
  ASSERT_NE(fd, nullptr);
  const uint64_t* replica = fd->GetReplica(0);

  // Rewrite an element within its chunk's frame: value must round-trip and
  // the zone map must widen before the write lands (scan finds it).
  const uint64_t chunk = 5;
  const uint64_t base = static_cast<const ForDeltaArray*>(fd.get())->base(chunk);
  const uint64_t index = chunk * kChunkElems + 17;
  fd->Init(index, base);  // the frame itself is always in range
  EXPECT_EQ(fd->Get(index, replica), base);
  EXPECT_GE(fd->CountIf(replica, 0, n, {CmpOp::kEq, base}), 1u);
}

TEST_F(ForDeltaTest, WriteOutsideTheFrameAborts) {
  const uint64_t n = 1000;
  std::vector<uint64_t> oracle;
  auto source = ClusteredSource(n, &oracle);
  auto fd = ForDeltaArray::TryBuild(*source, PlacementSpec::OsDefault(), source->bits(), topo_);
  ASSERT_NE(fd, nullptr);
  // Chunk 5's frame starts at ~5000; zero is far below it.
  EXPECT_DEATH(fd->Init(5 * kChunkElems, 0), "chunk frame");
}

TEST_F(ForDeltaTest, RestructureRoundTripsBothDirections) {
  const uint64_t n = 5000;
  std::vector<uint64_t> oracle;
  auto source = ClusteredSource(n, &oracle);

  auto fd = TryRestructure(pool_, *source, PlacementSpec::OsDefault(), source->bits(), topo_,
                           nullptr, Encoding::kForDelta);
  ASSERT_NE(fd, nullptr);
  EXPECT_EQ(fd->encoding(), Encoding::kForDelta);

  // And back out to bit-packed at the minimal width.
  const uint32_t data_bits = MinimalBits(pool_, *fd);
  auto packed = TryRestructure(pool_, *fd, PlacementSpec::OsDefault(), data_bits, topo_,
                               nullptr, Encoding::kBitPacked);
  ASSERT_NE(packed, nullptr);
  EXPECT_EQ(packed->encoding(), Encoding::kBitPacked);

  const uint64_t* fr = fd->GetReplica(0);
  const uint64_t* pr = packed->GetReplica(0);
  for (uint64_t i = 0; i < n; i += 61) {
    ASSERT_EQ(fd->Get(i, fr), oracle[i]) << "index " << i;
    ASSERT_EQ(packed->Get(i, pr), oracle[i]) << "index " << i;
  }
  // The restructure paths rebuild zone maps: scans on both replicas agree
  // with the oracle after the round trip.
  uint64_t want = 0;
  for (uint64_t i = 0; i < n; ++i) want += oracle[i] < 2000 ? 1 : 0;
  EXPECT_EQ(fd->CountIf(fr, 0, n, {CmpOp::kLt, 2000}), want);
  EXPECT_EQ(packed->CountIf(pr, 0, n, {CmpOp::kLt, 2000}), want);
}

}  // namespace
}  // namespace sa::smart
