// SmartArray factory, placement bookkeeping, and replica semantics.
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "platform/topology.h"
#include "smart/smart_array.h"

namespace sa::smart {
namespace {

platform::Topology TwoSockets() { return platform::Topology::Synthetic(2, 4); }

TEST(SmartArrayTest, FactoryProducesRequestedGeometry) {
  const auto topo = TwoSockets();
  for (const uint32_t bits : {1u, 7u, 32u, 33u, 64u}) {
    const auto array = SmartArray::Allocate(1000, PlacementSpec::Interleaved(), bits, topo);
    EXPECT_EQ(array->length(), 1000u);
    EXPECT_EQ(array->bits(), bits);
    EXPECT_EQ(array->num_chunks(), 16u);  // ceil(1000/64)
    EXPECT_EQ(array->words_per_replica(), 16u * bits);
    EXPECT_EQ(array->max_value(), LowMask(bits));
  }
}

TEST(SmartArrayTest, PlacementFlagsMatchFig9Properties) {
  const auto topo = TwoSockets();
  const auto interleaved = SmartArray::Allocate(64, PlacementSpec::Interleaved(), 64, topo);
  EXPECT_TRUE(interleaved->interleaved());
  EXPECT_FALSE(interleaved->replicated());
  EXPECT_EQ(interleaved->pinned(), -1);

  const auto pinned = SmartArray::Allocate(64, PlacementSpec::SingleSocket(1), 64, topo);
  EXPECT_EQ(pinned->pinned(), 1);
  EXPECT_FALSE(pinned->replicated());

  const auto replicated = SmartArray::Allocate(64, PlacementSpec::Replicated(), 64, topo);
  EXPECT_TRUE(replicated->replicated());
  EXPECT_EQ(replicated->num_replicas(), 2);

  const auto os_default = SmartArray::Allocate(64, PlacementSpec::OsDefault(), 64, topo);
  EXPECT_FALSE(os_default->replicated());
  EXPECT_FALSE(os_default->interleaved());
  EXPECT_EQ(os_default->pinned(), -1);
}

TEST(SmartArrayTest, NonReplicatedPlacementsHaveOneReplica) {
  const auto topo = TwoSockets();
  for (const auto& placement : {PlacementSpec::OsDefault(), PlacementSpec::SingleSocket(0),
                                PlacementSpec::Interleaved()}) {
    const auto array = SmartArray::Allocate(128, placement, 33, topo);
    EXPECT_EQ(array->num_replicas(), 1);
    EXPECT_EQ(array->GetReplica(0), array->GetReplica(1));
  }
}

TEST(SmartArrayTest, ReplicasAreDistinctAndConsistent) {
  const auto topo = TwoSockets();
  auto array = SmartArray::Allocate(500, PlacementSpec::Replicated(), 20, topo);
  ASSERT_EQ(array->num_replicas(), 2);
  EXPECT_NE(array->GetReplica(0), array->GetReplica(1));

  Xoshiro256 rng(9);
  for (uint64_t i = 0; i < array->length(); ++i) {
    array->Init(i, rng() & array->max_value());
  }
  // Init writes all replicas (Function 2 line 3).
  for (uint64_t i = 0; i < array->length(); ++i) {
    EXPECT_EQ(array->Get(i, array->GetReplica(0)), array->Get(i, array->GetReplica(1)));
  }
}

TEST(SmartArrayTest, FootprintScalesWithReplication) {
  const auto topo = TwoSockets();
  const uint64_t n = 10000;
  const auto single = SmartArray::Allocate(n, PlacementSpec::Interleaved(), 33, topo);
  const auto repl = SmartArray::Allocate(n, PlacementSpec::Replicated(), 33, topo);
  EXPECT_EQ(repl->footprint_bytes(), 2 * single->footprint_bytes());
}

TEST(SmartArrayTest, CompressionShrinksFootprint) {
  const auto topo = TwoSockets();
  const uint64_t n = 1 << 16;
  const auto full = SmartArray::Allocate(n, PlacementSpec::Interleaved(), 64, topo);
  const auto compressed = SmartArray::Allocate(n, PlacementSpec::Interleaved(), 33, topo);
  // 33-bit storage is 33/64 of the uncompressed footprint.
  EXPECT_EQ(compressed->footprint_bytes() * 64, full->footprint_bytes() * 33);
}

TEST(SmartArrayTest, RegionPoliciesFollowPlacement) {
  const auto topo = TwoSockets();
  const auto interleaved = SmartArray::Allocate(10000, PlacementSpec::Interleaved(), 64, topo);
  EXPECT_EQ(interleaved->region(0).policy(), platform::PagePolicy::kInterleaved);

  const auto pinned = SmartArray::Allocate(10000, PlacementSpec::SingleSocket(1), 64, topo);
  EXPECT_EQ(pinned->region(0).policy(), platform::PagePolicy::kPinned);
  EXPECT_EQ(pinned->region(0).home_socket(), 1);

  const auto repl = SmartArray::Allocate(10000, PlacementSpec::Replicated(), 64, topo);
  EXPECT_EQ(repl->region(0).home_socket(), 0);
  EXPECT_EQ(repl->region(1).home_socket(), 1);
}

TEST(SmartArrayTest, ConcurrentInitAtomicDistinctIndices) {
  const auto topo = TwoSockets();
  auto array = SmartArray::Allocate(4096, PlacementSpec::OsDefault(), 13, topo);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stripe the indices so threads interleave within shared words.
      for (uint64_t i = t; i < array->length(); i += kThreads) {
        array->InitAtomic(i, i & array->max_value());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (uint64_t i = 0; i < array->length(); ++i) {
    EXPECT_EQ(array->Get(i, array->GetReplica(0)), i & array->max_value());
  }
}

TEST(SmartArrayTest, HostTopologyAllocationWorks) {
  const auto topo = platform::Topology::Host();
  auto array = SmartArray::Allocate(256, PlacementSpec::Interleaved(), 40, topo);
  array->Init(0, 123);
  array->Init(255, 456);
  EXPECT_EQ(array->Get(0, array->GetReplicaForCurrentThread()), 123u);
  EXPECT_EQ(array->Get(255, array->GetReplicaForCurrentThread()), 456u);
}

TEST(SmartArrayDeathTest, RejectsInvalidArguments) {
  const auto topo = TwoSockets();
  EXPECT_DEATH(SmartArray::Allocate(0, PlacementSpec::OsDefault(), 64, topo), "empty");
  EXPECT_DEATH(SmartArray::Allocate(10, PlacementSpec::OsDefault(), 0, topo), "bit width");
  EXPECT_DEATH(SmartArray::Allocate(10, PlacementSpec::OsDefault(), 65, topo), "bit width");
  EXPECT_DEATH(SmartArray::Allocate(10, PlacementSpec::SingleSocket(5), 64, topo), "socket");
}

TEST(SmartArrayDeathTest, RejectsValueWiderThanElement) {
  const auto topo = TwoSockets();
  auto array = SmartArray::Allocate(10, PlacementSpec::OsDefault(), 8, topo);
  EXPECT_DEATH(array->Init(0, 256), "exceeds");
}

}  // namespace
}  // namespace sa::smart
