// Tests for the §7-extension smart functionalities living in smart/:
// the bounded map() API, index randomization, on-the-fly restructuring,
// and the per-chunk-locked synchronized array.
#include <numeric>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "smart/entry_points.h"
#include "smart/map_api.h"
#include "smart/randomization.h"
#include "smart/restructure.h"
#include "smart/synchronized_array.h"

namespace sa::smart {
namespace {

platform::Topology TwoSockets() { return platform::Topology::Synthetic(2, 2); }

// ---- bounded map() API ----

class MapApiTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MapApiTest, VisitsEveryElementInOrder) {
  const auto topo = TwoSockets();
  const uint64_t n = 500;
  auto array = SmartArray::Allocate(n, PlacementSpec::Interleaved(), GetParam(), topo);
  const uint64_t mask = array->max_value();
  for (uint64_t i = 0; i < n; ++i) {
    array->Init(i, (i * 3) & mask);
  }
  uint64_t expected_index = 37;
  uint64_t count = 0;
  MapRange(*array, 37, n - 5, 0, [&](uint64_t value, uint64_t index) {
    ASSERT_EQ(index, expected_index++);
    ASSERT_EQ(value, (index * 3) & mask);
    ++count;
  });
  EXPECT_EQ(count, n - 5 - 37);
}

TEST_P(MapApiTest, MapReduceMatchesIteratorSum) {
  const auto topo = TwoSockets();
  const uint64_t n = 1000;
  auto array = SmartArray::Allocate(n, PlacementSpec::OsDefault(), GetParam(), topo);
  Xoshiro256 rng(GetParam());
  uint64_t want = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t v = rng() & array->max_value();
    array->Init(i, v);
    want += v;
  }
  EXPECT_EQ(MapReduceRange(*array, 0, n, 0, [](uint64_t v, uint64_t) { return v; }), want);
}

TEST_P(MapApiTest, EmptyAndTinyRanges) {
  const auto topo = TwoSockets();
  auto array = SmartArray::Allocate(200, PlacementSpec::OsDefault(), GetParam(), topo);
  int calls = 0;
  MapRange(*array, 50, 50, 0, [&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  MapRange(*array, 63, 65, 0, [&](uint64_t, uint64_t) { ++calls; });  // crosses a chunk
  EXPECT_EQ(calls, 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, MapApiTest, ::testing::Values(1u, 13u, 32u, 33u, 64u),
                         [](const auto& info) { return "bits" + std::to_string(info.param); });

TEST(MapEntryPointTest, AbiMapAndSumAgree) {
  saSetDefaultTopology(2, 2);
  void* sa = saArrayAllocate(300, 0, 1, -1, 17);
  uint64_t want = 0;
  for (uint64_t i = 0; i < 300; ++i) {
    saArrayInit(sa, i, i & 0x1FFFF);
    want += i & 0x1FFFF;
  }
  EXPECT_EQ(saArraySumRange(sa, 0, 300), want);
  // Spans arrive in order and cover the range exactly once.
  struct Ctx {
    uint64_t next = 13;
    uint64_t visited = 0;
  } ctx;
  saArrayMapRange(
      sa, 13, 287,
      [](const uint64_t* values, uint64_t count, uint64_t first, void* raw) {
        auto* c = static_cast<Ctx*>(raw);
        EXPECT_EQ(first, c->next);
        for (uint64_t i = 0; i < count; ++i) {
          EXPECT_EQ(values[i], (first + i) & 0x1FFFF);
        }
        c->next = first + count;
        c->visited += count;
      },
      &ctx);
  EXPECT_EQ(ctx.visited, 287u - 13u);
  saArrayFree(sa);
  saSetDefaultTopology(0, 0);
}

// ---- index randomization ----

TEST(IndexPermutationTest, IsABijection) {
  for (const uint64_t n : {1ull, 2ull, 63ull, 64ull, 1000ull, 4096ull, 100'000ull}) {
    IndexPermutation perm(n, /*seed=*/99);
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t p = perm.Map(i);
      ASSERT_LT(p, n);
      ASSERT_TRUE(seen.insert(p).second) << "collision at " << i << " (n=" << n << ")";
      ASSERT_EQ(perm.Invert(p), i);
    }
  }
}

TEST(IndexPermutationTest, SeedsProduceDifferentPermutations) {
  IndexPermutation a(10'000, 1);
  IndexPermutation b(10'000, 2);
  int same = 0;
  for (uint64_t i = 0; i < 10'000; ++i) {
    same += a.Map(i) == b.Map(i) ? 1 : 0;
  }
  EXPECT_LT(same, 100);  // ~uniform: expected 1 collision
}

TEST(IndexPermutationTest, ScattersNeighbours) {
  // The hot-spot argument: consecutive logical indices should land far
  // apart physically, spreading a hot region across pages/channels.
  IndexPermutation perm(1 << 16, 7);
  uint64_t near = 0;
  for (uint64_t i = 0; i + 1 < 1000; ++i) {
    const uint64_t d = perm.Map(i) > perm.Map(i + 1) ? perm.Map(i) - perm.Map(i + 1)
                                                     : perm.Map(i + 1) - perm.Map(i);
    near += d < 1024 ? 1 : 0;
  }
  EXPECT_LT(near, 60);  // <6% of neighbours stay within the same ~page span
}

TEST(RandomizedArrayTest, LogicalViewRoundTrips) {
  const auto topo = TwoSockets();
  RandomizedArray array(5000, PlacementSpec::Interleaved(), 21, topo);
  for (uint64_t i = 0; i < 5000; ++i) {
    array.Init(i, (i * 7) & LowMask(21));
  }
  for (uint64_t i = 0; i < 5000; i += 13) {
    ASSERT_EQ(array.Get(i), (i * 7) & LowMask(21));
  }
}

TEST(RandomizedArrayTest, HotRegionSpreadsAcrossSockets) {
  const auto topo = TwoSockets();
  const uint64_t n = 1 << 16;  // 64Ki elements at 64 bits = 128 pages
  RandomizedArray randomized(n, PlacementSpec::Interleaved(), 64, topo);
  // A "hot" logical window the size of one page span.
  int nodes[2] = {0, 0};
  for (uint64_t i = 0; i < 512; ++i) {
    ++nodes[randomized.NodeOfLogicalIndex(i)];
  }
  // Interleaving alone would map this window onto ~1 page (one socket);
  // randomization must hit both sockets substantially.
  EXPECT_GT(nodes[0], 100);
  EXPECT_GT(nodes[1], 100);
}

// ---- restructuring ----

TEST(RestructureTest, PreservesContentsAcrossPlacementChange) {
  const auto topo = TwoSockets();
  rts::WorkerPool pool(topo, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  auto source = SmartArray::Allocate(10'000, PlacementSpec::SingleSocket(0), 33, topo);
  Xoshiro256 rng(5);
  for (uint64_t i = 0; i < source->length(); ++i) {
    source->Init(i, rng() & source->max_value());
  }
  const auto target = Restructure(pool, *source, PlacementSpec::Replicated(), 0, topo);
  EXPECT_TRUE(target->replicated());
  EXPECT_EQ(target->bits(), 33u);
  for (uint64_t i = 0; i < source->length(); ++i) {
    ASSERT_EQ(target->Get(i, target->GetReplica(1)),
              source->Get(i, source->GetReplica(0)));
  }
}

TEST(RestructureTest, NarrowsWidthWhenValuesFit) {
  const auto topo = TwoSockets();
  rts::WorkerPool pool(topo, rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false});
  auto source = SmartArray::Allocate(5000, PlacementSpec::OsDefault(), 64, topo);
  for (uint64_t i = 0; i < source->length(); ++i) {
    source->Init(i, i % 1000);  // fits in 10 bits
  }
  EXPECT_EQ(MinimalBits(pool, *source), 10u);
  const auto narrow = Restructure(pool, *source, PlacementSpec::Interleaved(), 10, topo);
  EXPECT_EQ(narrow->bits(), 10u);
  EXPECT_LT(narrow->footprint_bytes(), source->footprint_bytes() / 5);
  for (uint64_t i = 0; i < source->length(); i += 31) {
    ASSERT_EQ(narrow->Get(i, narrow->GetReplica(0)), i % 1000);
  }
}

TEST(RestructureTest, RejectsLossyNarrowing) {
  const auto topo = TwoSockets();
  auto source = SmartArray::Allocate(100, PlacementSpec::OsDefault(), 64, topo);
  source->Init(50, 1 << 20);
  // The worker pool is created inside the death statement: a fork-style
  // death test's child only inherits the calling thread, so a pre-existing
  // pool's RunOnAll would deadlock there instead of dying.
  EXPECT_DEATH(
      {
        rts::WorkerPool pool(topo,
                             rts::WorkerPool::Options{.num_threads = 2, .pin_threads = false});
        Restructure(pool, *source, PlacementSpec::OsDefault(), 10, topo);
      },
      "width");
}

// ---- synchronized array ----

TEST(SynchronizedArrayTest, ConcurrentHistogramIsExact) {
  const auto topo = TwoSockets();
  SynchronizedArray histogram(64, PlacementSpec::OsDefault(), 32, topo);
  constexpr int kThreads = 4;
  constexpr uint64_t kIncrementsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        histogram.FetchAdd(rng.Below(64), 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t total = 0;
  for (uint64_t bucket = 0; bucket < 64; ++bucket) {
    total += histogram.Get(bucket);
  }
  EXPECT_EQ(total, kThreads * kIncrementsPerThread);
}

TEST(SynchronizedArrayTest, ConcurrentSetsOnSharedWordsDoNotTear) {
  // 13-bit elements share words; racing Sets to adjacent indices must both
  // land (the non-synchronized plain Init would lose updates).
  const auto topo = TwoSockets();
  SynchronizedArray array(4096, PlacementSpec::OsDefault(), 13, topo);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = t; i < array.length(); i += kThreads) {
        array.Set(i, i & LowMask(13));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (uint64_t i = 0; i < array.length(); ++i) {
    ASSERT_EQ(array.Get(i), i & LowMask(13)) << "index " << i;
  }
}

TEST(SynchronizedArrayTest, ContendedFetchAddAcrossChunkAndWordBoundaries) {
  // Backoff stress: many threads hammer FetchAdd on a handful of indices
  // chosen to straddle chunk boundaries (different ChunkLocks for adjacent
  // indices) and packed-word boundaries within a chunk (13-bit elements:
  // element 4 spans words 0 and 1 of its chunk). Every increment must land
  // and every returned "previous" value must be unique per index.
  const auto topo = TwoSockets();
  SynchronizedArray array(512, PlacementSpec::OsDefault(), 13, topo);
  // 63/64 straddle a chunk boundary; 4/5 and 132/133 straddle packed words
  // (13*4 = 52, 13*5 = 65 > 64); 127/128 straddle the next chunk boundary.
  const std::vector<uint64_t> hot = {4, 5, 63, 64, 127, 128, 132, 133};
  constexpr int kThreads = 8;
  constexpr uint64_t kIncrementsPerThread = 8'000;
  std::vector<std::thread> threads;
  std::vector<std::vector<uint64_t>> tallies(kThreads, std::vector<uint64_t>(hot.size(), 0));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      for (uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        const uint64_t pick = rng.Below(hot.size());
        array.FetchAdd(hot[pick], 1);
        ++tallies[t][pick];
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Exact per-index totals (counts wrap at the 13-bit width; 64k increments
  // over 8 indices keeps every count below the wrap anyway): any lost
  // FetchAdd under contention shows up as a short count.
  for (size_t h = 0; h < hot.size(); ++h) {
    uint64_t expected = 0;
    for (int t = 0; t < kThreads; ++t) {
      expected += tallies[t][h];
    }
    EXPECT_EQ(array.Get(hot[h]), expected & LowMask(13)) << "index " << hot[h];
  }
  // Neighbours of the hot indices must be untouched: contended RMWs on a
  // shared packed word never leak into adjacent elements.
  for (const uint64_t idx : {3ull, 6ull, 62ull, 65ull, 126ull, 129ull, 131ull, 134ull}) {
    EXPECT_EQ(array.Get(idx), 0u) << "index " << idx;
  }
}

TEST(SynchronizedArrayTest, FetchAddReturnsPreviousAndWraps) {
  const auto topo = TwoSockets();
  SynchronizedArray array(10, PlacementSpec::OsDefault(), 4, topo);
  EXPECT_EQ(array.FetchAdd(3, 5), 0u);
  EXPECT_EQ(array.FetchAdd(3, 12), 5u);
  EXPECT_EQ(array.Get(3), (5 + 12) & 0xFu);  // wraps at the element width
}

}  // namespace
}  // namespace sa::smart
