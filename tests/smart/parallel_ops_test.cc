// Parallel fill/scan operations over smart arrays, cross-checked against
// serial references for every placement and representative widths.
#include <gtest/gtest.h>

#include "common/random.h"
#include "smart/parallel_ops.h"

namespace sa::smart {
namespace {

struct Combo {
  uint32_t bits;
  Placement placement;
};

class ParallelOpsTest : public ::testing::TestWithParam<Combo> {
 protected:
  ParallelOpsTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}) {}

  PlacementSpec Spec() const {
    switch (GetParam().placement) {
      case Placement::kOsDefault:
        return PlacementSpec::OsDefault();
      case Placement::kSingleSocket:
        return PlacementSpec::SingleSocket(1);
      case Placement::kInterleaved:
        return PlacementSpec::Interleaved();
      case Placement::kReplicated:
        return PlacementSpec::Replicated();
    }
    return PlacementSpec::OsDefault();
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
};

TEST_P(ParallelOpsTest, ParallelFillMatchesGenerator) {
  const uint64_t n = 100'000;
  auto array = SmartArray::Allocate(n, Spec(), GetParam().bits, topo_);
  const uint64_t mask = array->max_value();
  ParallelFill(pool_, *array, [mask](uint64_t i) { return (i * 31 + 7) & mask; });
  // Spot-check densely at chunk boundaries and sparsely elsewhere.
  for (uint64_t i = 0; i < n; i = (i < 300 ? i + 1 : i + 997)) {
    ASSERT_EQ(array->Get(i, array->GetReplica(0)), (i * 31 + 7) & mask) << "index " << i;
  }
  if (array->replicated()) {
    for (uint64_t i = 0; i < n; i += 1009) {
      ASSERT_EQ(array->Get(i, array->GetReplica(1)), (i * 31 + 7) & mask);
    }
  }
}

TEST_P(ParallelOpsTest, ParallelSumMatchesSerialSum) {
  const uint64_t n = 50'000;
  auto array = SmartArray::Allocate(n, Spec(), GetParam().bits, topo_);
  const uint64_t mask = array->max_value();
  uint64_t want = 0;
  Xoshiro256 rng(GetParam().bits);
  std::vector<uint64_t> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = rng() & mask;
    want += values[i];
  }
  ParallelFill(pool_, *array, [&values](uint64_t i) { return values[i]; });
  EXPECT_EQ(ParallelSum(pool_, *array), want);
}

TEST_P(ParallelOpsTest, ParallelSum2MatchesPaperKernel) {
  // The §5.1 aggregation: sum += a1[i] + a2[i], with the paper's dataset
  // formula a[i] = (i + random(0,1,2)) & ((1 << bits) - 1).
  const uint64_t n = 40'000;
  const uint32_t bits = GetParam().bits;
  auto a1 = SmartArray::Allocate(n, Spec(), bits, topo_);
  auto a2 = SmartArray::Allocate(n, Spec(), bits, topo_);
  const uint64_t mask = a1->max_value();
  auto gen1 = [mask](uint64_t i) { return (i + SplitMix64(i) % 3) & mask; };
  auto gen2 = [mask](uint64_t i) { return (i + SplitMix64(i ^ 0xbeef) % 3) & mask; };
  ParallelFill(pool_, *a1, gen1);
  ParallelFill(pool_, *a2, gen2);
  uint64_t want = 0;
  for (uint64_t i = 0; i < n; ++i) {
    want += gen1(i) + gen2(i);
  }
  EXPECT_EQ(ParallelSum2(pool_, *a1, *a2), want);
}

TEST_P(ParallelOpsTest, ParallelScansMatchSerialOracle) {
  const uint64_t n = 40'000;
  auto array = SmartArray::Allocate(n, Spec(), GetParam().bits, topo_);
  const uint64_t mask = array->max_value();
  auto gen = [mask](uint64_t i) { return SplitMix64(i * 7) & mask; };
  ParallelFill(pool_, *array, gen);
  const Predicate p{CmpOp::kLt, mask / 2 + 1};
  uint64_t want_count = 0, want_sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (Matches(p, gen(i))) {
      ++want_count;
      want_sum += gen(i);
    }
  }
  EXPECT_EQ(ParallelCountIf(pool_, *array, p), want_count);
  EXPECT_EQ(ParallelFilteredSum(pool_, *array, p), want_sum);
  std::vector<uint64_t> bitmap((n + kWordBits - 1) / kWordBits);
  EXPECT_EQ(ParallelSelectIf(pool_, *array, p, bitmap.data()), want_count);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ((bitmap[i / kWordBits] >> (i % kWordBits)) & 1, Matches(p, gen(i)) ? 1u : 0u)
        << "index " << i;
  }
}

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  std::string placement = ToString(info.param.placement);
  for (char& c : placement) {
    if (c == '-') {
      c = '_';
    }
  }
  return "bits" + std::to_string(info.param.bits) + "_" + placement;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelOpsTest,
    ::testing::Values(Combo{10, Placement::kOsDefault}, Combo{10, Placement::kReplicated},
                      Combo{32, Placement::kInterleaved}, Combo{33, Placement::kSingleSocket},
                      Combo{33, Placement::kReplicated}, Combo{50, Placement::kInterleaved},
                      Combo{64, Placement::kOsDefault}, Combo{64, Placement::kReplicated},
                      Combo{1, Placement::kInterleaved}, Combo{63, Placement::kReplicated}),
    ComboName);

}  // namespace
}  // namespace sa::smart
