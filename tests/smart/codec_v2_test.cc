// Differential coverage for the codec v2 streaming seam: PackRange /
// UnpackRange round-trips at every width 1..64 on ragged lengths and
// unaligned sub-ranges, word-level equivalence of the pack network against
// the per-element initializer, and the C-ABI bulk-transfer entry points.
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "platform/topology.h"
#include "smart/dispatch.h"
#include "smart/entry_points.h"
#include "smart/parallel_ops.h"
#include "smart/smart_array.h"

namespace {

using sa::LowMask;
using sa::SplitMix64;
using sa::platform::Topology;
using sa::smart::CodecFor;
using sa::smart::PlacementSpec;
using sa::smart::SmartArray;

// Deterministic per-(width, index) pattern with high bits set often (the
// boundary_widths_test pattern), so masking and cross-word spills are
// exercised at every width.
uint64_t Pattern(uint32_t bits, uint64_t i) {
  return SplitMix64(i * 64 + bits) & LowMask(bits);
}

// Ragged lengths around chunk boundaries.
constexpr uint64_t kLengths[] = {1, 63, 65, 127, 129, 130, 1000};

class CodecV2Test : public ::testing::Test {
 protected:
  Topology topology_ = Topology::Synthetic(1, 2);
};

TEST_F(CodecV2Test, PackThenUnpackRoundTripsAtEveryWidth) {
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    for (const uint64_t length : kLengths) {
      auto array = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
      std::vector<uint64_t> values(length);
      for (uint64_t i = 0; i < length; ++i) {
        values[i] = Pattern(bits, i);
      }
      sa::smart::PackRange(*array, 0, length, values.data());
      std::vector<uint64_t> decoded(length, ~uint64_t{0});
      sa::smart::UnpackRange(*array, 0, length, decoded.data());
      for (uint64_t i = 0; i < length; ++i) {
        ASSERT_EQ(decoded[i], values[i]) << "bits=" << bits << " n=" << length << " i=" << i;
        ASSERT_EQ(array->Get(i, array->GetReplica(0)), values[i])
            << "bits=" << bits << " n=" << length << " i=" << i;
      }
    }
  }
}

TEST_F(CodecV2Test, PackNetworkMatchesPerElementInitWordForWord) {
  const uint64_t length = 1000;
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    auto packed = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
    auto inited = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
    std::vector<uint64_t> values(length);
    for (uint64_t i = 0; i < length; ++i) {
      values[i] = Pattern(bits, i);
      inited->Init(i, values[i]);
    }
    sa::smart::PackRange(*packed, 0, length, values.data());
    // Every word the initializer produced must come out of the pack network
    // identically (same layout, same canary masking) up to the last word
    // the array's length touches; trailing chunk padding may differ (the
    // pack network writes whole words, Init leaves untouched bits zero),
    // but decoded elements already matched above.
    const uint64_t* p = packed->GetReplica(0);
    const uint64_t* q = inited->GetReplica(0);
    const uint64_t full_chunks = length / sa::kChunkElems;
    const uint64_t words = full_chunks * sa::WordsPerChunk(bits);
    for (uint64_t w = 0; w < words; ++w) {
      ASSERT_EQ(p[w], q[w]) << "bits=" << bits << " word=" << w;
    }
    for (uint64_t i = full_chunks * sa::kChunkElems; i < length; ++i) {
      ASSERT_EQ(packed->Get(i, p), inited->Get(i, q)) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST_F(CodecV2Test, SubRangeTransfersLeaveNeighborsIntact) {
  const uint64_t length = 1000;
  // Unaligned begins/ends in every head/body/tail combination.
  const std::pair<uint64_t, uint64_t> kRanges[] = {
      {0, 1}, {0, 64}, {1, 63}, {1, 65}, {63, 65}, {17, 41}, {17, 991}, {64, 1000}, {65, 999}};
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    const auto& codec = CodecFor(bits);
    auto array = SmartArray::Allocate(length, PlacementSpec::OsDefault(), bits, topology_);
    for (uint64_t i = 0; i < length; ++i) {
      array->Init(i, Pattern(bits, i));
    }
    for (const auto& [begin, end] : kRanges) {
      // Overwrite [begin, end) with a shifted pattern, then check both the
      // overwritten range and its untouched neighbors element-wise.
      std::vector<uint64_t> values(end - begin);
      for (uint64_t i = 0; i < values.size(); ++i) {
        values[i] = Pattern(bits, begin + i + 7);
      }
      codec.pack_range(array->MutableReplica(0), begin, end, values.data());
      std::vector<uint64_t> decoded(end - begin, ~uint64_t{0});
      codec.unpack_range(array->GetReplica(0), begin, end, decoded.data());
      for (uint64_t i = 0; i < values.size(); ++i) {
        ASSERT_EQ(decoded[i], values[i])
            << "bits=" << bits << " range=[" << begin << "," << end << ") i=" << i;
      }
      for (uint64_t i = 0; i < length; ++i) {
        if (i < begin || i >= end) {
          ASSERT_EQ(array->Get(i, array->GetReplica(0)), Pattern(bits, i))
              << "bits=" << bits << " range=[" << begin << "," << end << ") neighbor i=" << i;
        }
      }
      // Restore for the next sub-range.
      for (uint64_t i = begin; i < end; ++i) {
        array->Init(i, Pattern(bits, i));
      }
    }
  }
}

TEST_F(CodecV2Test, PackRangeWritesEveryReplica) {
  const uint64_t length = 257;
  for (const uint32_t bits : {5u, 13u, 32u, 64u}) {
    auto array = SmartArray::Allocate(length, PlacementSpec::Replicated(), bits,
                                      Topology::Synthetic(2, 2));
    std::vector<uint64_t> values(length);
    for (uint64_t i = 0; i < length; ++i) {
      values[i] = Pattern(bits, i);
    }
    sa::smart::PackRange(*array, 0, length, values.data());
    ASSERT_GT(array->num_replicas(), 1);
    for (int r = 0; r < array->num_replicas(); ++r) {
      for (uint64_t i = 0; i < length; ++i) {
        ASSERT_EQ(array->Get(i, array->GetReplica(r)), values[i])
            << "bits=" << bits << " replica=" << r << " i=" << i;
      }
    }
  }
}

TEST_F(CodecV2Test, EntryPointBulkTransferRoundTrips) {
  const uint64_t length = 321;
  for (const uint32_t bits : {1u, 7u, 13u, 33u, 64u}) {
    void* handle = saArrayAllocate(length, 0, 0, -1, bits);
    ASSERT_NE(handle, nullptr);
    std::vector<uint64_t> values(length);
    for (uint64_t i = 0; i < length; ++i) {
      values[i] = Pattern(bits, i);
    }
    saArrayPackRange(handle, 0, length, values.data());
    std::vector<uint64_t> decoded(length, ~uint64_t{0});
    saArrayUnpackRange(handle, 0, length, decoded.data());
    EXPECT_EQ(decoded, values) << "bits=" << bits;
    // Unaligned sub-range read through the same entry point.
    std::vector<uint64_t> middle(100);
    saArrayUnpackRange(handle, 17, 117, middle.data());
    for (uint64_t i = 0; i < middle.size(); ++i) {
      EXPECT_EQ(middle[i], values[17 + i]) << "bits=" << bits << " i=" << i;
    }
    saArrayFree(handle);
  }
}

}  // namespace
