// Dynamic adaptation: AdaptiveArray + the multi-array PageRank extension.
#include <gtest/gtest.h>

#include "adapt/adaptive_array.h"
#include "adapt/cases.h"

namespace sa::adapt {
namespace {

WorkloadCounters MemBoundStreamingCounters(const MachineCaps& caps) {
  WorkloadCounters c;
  c.exec_current_per_socket = caps.exec_max_per_socket * 0.2;
  c.bw_current_memory = std::min(caps.bw_max_memory, 2 * caps.bw_max_interconnect) * 0.95;
  c.max_mem_utilization = 0.95;
  c.max_ic_utilization = 0.92;
  c.accesses_per_second = c.bw_current_memory * 2 / 8.0;
  c.elem_bytes = 8.0;
  c.dataset_bytes = 1e9;
  return c;
}

class AdaptiveArrayTest : public ::testing::Test {
 protected:
  AdaptiveArrayTest()
      : topo_(platform::Topology::Synthetic(2, 2)),
        pool_(topo_, rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false}) {}

  AdaptiveArray Make(uint32_t data_bits) {
    auto array =
        smart::SmartArray::Allocate(10'000, smart::PlacementSpec::Interleaved(), 64, topo_);
    for (uint64_t i = 0; i < array->length(); ++i) {
      array->Init(i, i % (uint64_t{1} << data_bits));
    }
    SoftwareHints hints;
    hints.read_only = true;
    hints.mostly_reads = true;
    hints.linear_passes = 10.0;
    return AdaptiveArray(std::move(array), pool_, topo_,
                         MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core()), hints,
                         ArrayCosts::FromCostModel(sim::CostModel::Default()));
  }

  platform::Topology topo_;
  rts::WorkerPool pool_;
};

TEST_F(AdaptiveArrayTest, MeasuresDataWidthUpFront) {
  AdaptiveArray adaptive = Make(10);
  EXPECT_EQ(adaptive.data_bits(), 10u);
  EXPECT_FALSE(adaptive.current().compressed);
  EXPECT_EQ(adaptive.current().placement.kind, smart::Placement::kInterleaved);
}

TEST_F(AdaptiveArrayTest, AdaptsToMemoryBoundProfile) {
  AdaptiveArray adaptive = Make(10);
  adaptive.ObserveProfile(
      MemBoundStreamingCounters(MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core())));
  EXPECT_TRUE(adaptive.MaybeAdapt());
  // 18-core, read-only, memory-bound, big compute headroom: the §5.1 answer
  // is replicated + compressed — and the storage must now implement it.
  EXPECT_EQ(adaptive.current().placement.kind, smart::Placement::kReplicated);
  EXPECT_TRUE(adaptive.current().compressed);
  EXPECT_EQ(adaptive.array().bits(), 10u);
  // Contents survived the restructure.
  for (uint64_t i = 0; i < adaptive.array().length(); i += 97) {
    ASSERT_EQ(adaptive.array().Get(i, adaptive.array().GetReplica(1)), i % 1024);
  }
  EXPECT_EQ(adaptive.adaptations(), 1);
}

TEST_F(AdaptiveArrayTest, StableProfileDoesNotThrash) {
  AdaptiveArray adaptive = Make(10);
  const auto counters =
      MemBoundStreamingCounters(MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core()));
  adaptive.ObserveProfile(counters);
  ASSERT_TRUE(adaptive.MaybeAdapt());
  adaptive.ObserveProfile(counters);
  EXPECT_FALSE(adaptive.MaybeAdapt());  // same decision, no rebuild
  EXPECT_EQ(adaptive.adaptations(), 1);
}

TEST_F(AdaptiveArrayTest, CpuBoundProfileKeepsInterleavedUncompressed) {
  AdaptiveArray adaptive = Make(10);
  WorkloadCounters counters =
      MemBoundStreamingCounters(MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core()));
  counters.max_mem_utilization = 0.2;  // not memory bound at all
  counters.max_ic_utilization = 0.2;
  adaptive.ObserveProfile(counters);
  EXPECT_FALSE(adaptive.MaybeAdapt());
}

TEST_F(AdaptiveArrayTest, RequiresAProfile) {
  AdaptiveArray adaptive = Make(10);
  EXPECT_DEATH(adaptive.MaybeAdapt(), "profile");
}

// ---- multi-array (PageRank) extension ----

TEST(PageRankAdaptivityTest, CasesAreWellFormed) {
  CaseGridOptions options;
  options.scenarios = {MemoryScenario::kPlenty};
  const auto cases = BuildPageRankCases(sim::MachineSpec::OracleX5_8Core(), options);
  ASSERT_EQ(cases.size(), 1u);
  const auto& c = cases.front();
  EXPECT_GT(c.inputs.counters.random_fraction, 0.5);
  EXPECT_NEAR(c.inputs.compression_ratio, 0.79, 0.02);  // V+E footprint ratio
  EXPECT_GT(c.inputs.counters.dataset_bytes, 1e10);
}

TEST(PageRankAdaptivityTest, SelectorPicksReplicationOnEightCore) {
  // The Fig. 1 result, reached automatically through the multi-array case.
  CaseGridOptions options;
  options.scenarios = {MemoryScenario::kPlenty};
  const auto cases = BuildPageRankCases(sim::MachineSpec::OracleX5_8Core(), options);
  const auto result = ChooseConfiguration(cases.front().inputs);
  EXPECT_EQ(result.chosen.placement.kind, smart::Placement::kReplicated);
  // And the choice must actually be (near-)optimal per the simulator.
  const auto all = CandidateConfigurations(MemoryScenario::kPlenty);
  double best = 1e300;
  for (const auto& config : all) {
    best = std::min(best, cases.front().run_seconds(config));
  }
  EXPECT_LE(cases.front().run_seconds(result.chosen), best * 1.1);
}

TEST(PageRankAdaptivityTest, EvaluationAccuracyAcrossMachinesAndScenarios) {
  CaseGridOptions options;  // all three scenarios
  std::vector<EvalCase> cases;
  for (const auto& spec :
       {sim::MachineSpec::OracleX5_8Core(), sim::MachineSpec::OracleX5_18Core()}) {
    auto c = BuildPageRankCases(spec, options);
    cases.insert(cases.end(), std::make_move_iterator(c.begin()),
                 std::make_move_iterator(c.end()));
  }
  const EvalOutcome outcome = EvaluateAdaptivity(cases);
  EXPECT_EQ(outcome.overall_cases, 6);
  // The multi-array extension should still be right most of the time and
  // never catastrophically wrong.
  EXPECT_GE(outcome.overall_correct, 4);
  EXPECT_LT(outcome.avg_pct_from_optimal, 15.0);
}

}  // namespace
}  // namespace sa::adapt
