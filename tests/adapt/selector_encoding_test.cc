// The §6 encoding axis: frame-of-reference+delta is selected only for
// read-only slots where it either shrinks the packed words materially or
// serves a selective predicate-scan workload.
#include <gtest/gtest.h>

#include "adapt/selector.h"

namespace sa::adapt {
namespace {

// Memory-bound streaming counters on a machine where compression wins, so
// the placement/compression steps deterministically choose a compressed
// candidate and the encoding decision is actually reached.
SelectorInputs CompressedScanInputs() {
  SelectorInputs in;
  in.machine = MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core());
  WorkloadCounters c;
  c.exec_current_per_socket = in.machine.exec_max_per_socket * 0.25;
  c.bw_current_memory =
      std::min(in.machine.bw_max_memory, 2.0 * in.machine.bw_max_interconnect) * 0.95;
  c.max_mem_utilization = 0.95;
  c.max_ic_utilization = 0.9;
  c.accesses_per_second = c.bw_current_memory * 2 / 8.0;
  c.elem_bytes = 8.0;
  c.dataset_bytes = 8e9;
  c.random_fraction = 0.0;
  in.counters = c;
  in.costs = ArrayCosts::FromCostModel(sim::CostModel::Default());
  in.hints.read_only = true;
  in.hints.mostly_reads = true;
  in.hints.linear_passes = 10.0;
  in.compression_ratio = 0.25;
  return in;
}

TEST(SelectorEncodingTest, DefaultStaysBitPacked) {
  const SelectorResult result = ChooseConfiguration(CompressedScanInputs());
  ASSERT_TRUE(result.chosen.compressed);
  EXPECT_EQ(result.chosen.encoding, smart::Encoding::kBitPacked);
}

TEST(SelectorEncodingTest, MaterialWordShrinkSelectsForDelta) {
  SelectorInputs in = CompressedScanInputs();
  in.for_delta_ratio = 0.5;
  in.hints.predicate_selectivity = 0.4;  // scans observed, even unselective
  const SelectorResult result = ChooseConfiguration(in);
  ASSERT_TRUE(result.chosen.compressed);
  EXPECT_EQ(result.chosen.encoding, smart::Encoding::kForDelta);
}

// The evidence gate: a read-only slot with a huge frame-of-reference win but
// NO observed predicate scans keeps the bit-packed geometry. This is the
// graph-slot shape — sealed CSR offset arrays are clustered (tiny FoR ratio)
// but their consumers walk raw packed words through the width codec, and no
// scan traffic means no workload the re-encoding could speed up.
TEST(SelectorEncodingTest, NoObservedScansStaysBitPackedDespiteShrink) {
  SelectorInputs in = CompressedScanInputs();
  in.for_delta_ratio = 0.2;
  in.hints.predicate_selectivity = -1.0;  // never scanned
  const SelectorResult result = ChooseConfiguration(in);
  ASSERT_TRUE(result.chosen.compressed);
  EXPECT_EQ(result.chosen.encoding, smart::Encoding::kBitPacked);
}

TEST(SelectorEncodingTest, SelectiveScansSelectForDeltaEvenForModestShrink) {
  SelectorInputs in = CompressedScanInputs();
  in.for_delta_ratio = 0.9;  // below the shrink threshold on its own
  in.hints.predicate_selectivity = 0.01;
  const SelectorResult result = ChooseConfiguration(in);
  ASSERT_TRUE(result.chosen.compressed);
  EXPECT_EQ(result.chosen.encoding, smart::Encoding::kForDelta);

  // Unselective scans do not justify the encoding at a modest shrink.
  in.hints.predicate_selectivity = 0.5;
  EXPECT_EQ(ChooseConfiguration(in).chosen.encoding, smart::Encoding::kBitPacked);
}

TEST(SelectorEncodingTest, WritableSlotsNeverGetForDelta) {
  SelectorInputs in = CompressedScanInputs();
  in.for_delta_ratio = 0.3;
  in.hints.predicate_selectivity = 0.01;
  in.hints.read_only = false;
  const SelectorResult result = ChooseConfiguration(in);
  EXPECT_EQ(result.chosen.encoding, smart::Encoding::kBitPacked);
}

TEST(SelectorEncodingTest, NoWinAtAllStaysBitPacked) {
  SelectorInputs in = CompressedScanInputs();
  in.for_delta_ratio = 1.0;
  in.hints.predicate_selectivity = 0.01;  // selective, but FoR saves nothing
  EXPECT_EQ(ChooseConfiguration(in).chosen.encoding, smart::Encoding::kBitPacked);
}

}  // namespace
}  // namespace sa::adapt
