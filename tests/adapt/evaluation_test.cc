// End-to-end adaptivity evaluation (§6.3): the selector must approach the
// paper's accuracy against the simulator's ground truth.
#include <gtest/gtest.h>

#include "adapt/cases.h"

namespace sa::adapt {
namespace {

TEST(EvaluationCandidatesTest, ScenariosFilterReplication) {
  const auto plenty = CandidateConfigurations(MemoryScenario::kPlenty);
  EXPECT_EQ(plenty.size(), 6u);  // 3 placements x 2 compression states
  const auto no_uncomp = CandidateConfigurations(MemoryScenario::kNoUncompressedReplication);
  EXPECT_EQ(no_uncomp.size(), 5u);  // uncompressed replication dropped
  for (const auto& c : no_uncomp) {
    EXPECT_FALSE(c.placement.kind == smart::Placement::kReplicated && !c.compressed);
  }
  const auto none = CandidateConfigurations(MemoryScenario::kNoReplicationAtAll);
  EXPECT_EQ(none.size(), 4u);
  for (const auto& c : none) {
    EXPECT_NE(c.placement.kind, smart::Placement::kReplicated);
  }
}

TEST(EvaluationTest, CountersFromProfilingRunLookMemoryBound) {
  const auto cases = BuildAggregationCases(sim::MachineSpec::OracleX5_18Core(),
                                           {{64}, {MemoryScenario::kPlenty}});
  ASSERT_FALSE(cases.empty());
  const auto& counters = cases.front().inputs.counters;
  EXPECT_TRUE(counters.memory_bound());
  EXPECT_GT(counters.accesses_per_second, 1e9);
  EXPECT_GT(counters.bw_current_memory, 10e9);
  EXPECT_LT(counters.exec_current_per_socket,
            cases.front().inputs.machine.exec_max_per_socket);
}

TEST(EvaluationTest, SelectorAccuracyOnFullGrid) {
  CaseGridOptions options;  // defaults: both machines, 4 widths, 3 scenarios
  const auto cases = BuildFullCaseGrid(options);
  const EvalOutcome outcome = EvaluateAdaptivity(cases);

  ASSERT_GT(outcome.overall_cases, 40);  // a real grid, not a toy

  // The paper reports 94% end-to-end correctness, within 0.2% of optimal on
  // average, and 11.7% better than the best static choice. Our simulator
  // and estimator differ in detail, so assert the same *regime*.
  const double overall_accuracy =
      static_cast<double>(outcome.overall_correct) / outcome.overall_cases;
  EXPECT_GT(overall_accuracy, 0.75) << "chosen configs should usually be optimal";

  const double step1_accuracy =
      static_cast<double>(outcome.step1_correct) / std::max(1, outcome.step1_cases);
  EXPECT_GT(step1_accuracy, 0.8);

  const double step2_accuracy =
      static_cast<double>(outcome.step2_correct) / std::max(1, outcome.step2_cases);
  EXPECT_GT(step2_accuracy, 0.8);

  // Wrong picks must be cheap, and adaptivity must beat every static config.
  EXPECT_LT(outcome.avg_pct_from_optimal, 10.0);
  EXPECT_GT(outcome.improvement_over_best_static_pct, 0.0);
}

TEST(EvaluationTest, PerCaseRecordsAreComplete) {
  CaseGridOptions options;
  options.bit_widths = {33};
  options.scenarios = {MemoryScenario::kPlenty};
  const auto cases = BuildAggregationCases(sim::MachineSpec::OracleX5_8Core(), options);
  const EvalOutcome outcome = EvaluateAdaptivity(cases);
  ASSERT_EQ(outcome.cases.size(), cases.size());
  for (const auto& pc : outcome.cases) {
    EXPECT_FALSE(pc.name.empty());
    EXPECT_GT(pc.chosen_seconds, 0.0);
    EXPECT_GT(pc.optimal_seconds, 0.0);
    EXPECT_GE(pc.chosen_seconds, pc.optimal_seconds * (1 - 1e-9));
  }
}

}  // namespace
}  // namespace sa::adapt
