// §6.2 speedup estimator behaviour.
#include <gtest/gtest.h>

#include "adapt/estimator.h"

namespace sa::adapt {
namespace {

MachineCaps Caps18() { return MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core()); }
MachineCaps Caps8() { return MachineCaps::FromSpec(sim::MachineSpec::OracleX5_8Core()); }

WorkloadCounters MemBoundCounters(const MachineCaps& caps) {
  WorkloadCounters c;
  c.exec_current_per_socket = caps.exec_max_per_socket * 0.2;
  c.bw_current_memory = std::min(caps.bw_max_memory, 2 * caps.bw_max_interconnect);
  c.max_mem_utilization = 1.0;
  c.max_ic_utilization = 0.95;
  c.accesses_per_second = c.bw_current_memory * caps.sockets / 8.0;  // 8B elements
  c.elem_bytes = 8.0;
  c.dataset_bytes = 8e9;
  c.random_fraction = 0.0;
  return c;
}

ArrayCosts DefaultCosts() { return ArrayCosts::FromCostModel(sim::CostModel::Default()); }

TEST(EstimatorTest, ReplicationBeatsInterleaveWhenIcBound) {
  const auto caps = Caps8();  // interconnect much weaker than memory
  const auto counters = MemBoundCounters(caps);
  const double repl = EstimateConfigSpeedup(caps, counters, DefaultCosts(),
                                            {smart::PlacementSpec::Replicated(), false}, 1.0);
  const double inter = EstimateConfigSpeedup(caps, counters, DefaultCosts(),
                                             {smart::PlacementSpec::Interleaved(), false}, 1.0);
  EXPECT_GT(repl, inter);
}

TEST(EstimatorTest, CompressionWinsWithCpuHeadroomAndBandwidthBound) {
  // 18-core: plenty of spare cycles -> compressed replicated should beat
  // uncompressed replicated (the Fig. 2d result).
  const auto caps = Caps18();
  const auto counters = MemBoundCounters(caps);
  const double u = EstimateConfigSpeedup(caps, counters, DefaultCosts(),
                                         {smart::PlacementSpec::Replicated(), false}, 33.0 / 64);
  const double c = EstimateConfigSpeedup(caps, counters, DefaultCosts(),
                                         {smart::PlacementSpec::Replicated(), true}, 33.0 / 64);
  EXPECT_GT(c, u);
}

TEST(EstimatorTest, CompressionLosesWithoutCpuHeadroom) {
  // Same candidate pair but with the cores already nearly saturated: the
  // added decompression cycles swamp the bandwidth saving.
  const auto caps = Caps8();
  auto counters = MemBoundCounters(caps);
  counters.exec_current_per_socket = caps.exec_max_per_socket * 0.92;
  const double u = EstimateConfigSpeedup(caps, counters, DefaultCosts(),
                                         {smart::PlacementSpec::Replicated(), false}, 33.0 / 64);
  const double c = EstimateConfigSpeedup(caps, counters, DefaultCosts(),
                                         {smart::PlacementSpec::Replicated(), true}, 33.0 / 64);
  EXPECT_LT(c, u);
}

TEST(EstimatorTest, StrongerCompressionSavesMoreBandwidth) {
  const auto caps = Caps18();
  const auto counters = MemBoundCounters(caps);
  const Configuration config{smart::PlacementSpec::Replicated(), true};
  const double r10 = EstimateConfigSpeedup(caps, counters, DefaultCosts(), config, 10.0 / 64);
  const double r50 = EstimateConfigSpeedup(caps, counters, DefaultCosts(), config, 50.0 / 64);
  EXPECT_GT(r10, r50);
}

TEST(EstimatorTest, ChooseBetweenCandidatesFallsBackWithoutCompressedOption) {
  const auto caps = Caps18();
  const auto counters = MemBoundCounters(caps);
  const auto chosen = ChooseBetweenCandidates(caps, counters, DefaultCosts(),
                                              smart::PlacementSpec::Interleaved(), std::nullopt,
                                              0.5);
  EXPECT_FALSE(chosen.compressed);
  EXPECT_EQ(chosen.placement.kind, smart::Placement::kInterleaved);
}

TEST(EstimatorTest, ChoosesCompressedOnEighteenCoreStyleCaps) {
  const auto caps = Caps18();
  const auto counters = MemBoundCounters(caps);
  const auto chosen = ChooseBetweenCandidates(
      caps, counters, DefaultCosts(), smart::PlacementSpec::Replicated(),
      smart::PlacementSpec::Replicated(), 33.0 / 64);
  EXPECT_TRUE(chosen.compressed);
}

TEST(EstimatorDeathTest, RejectsDegenerateInputs) {
  const auto caps = Caps18();
  WorkloadCounters counters;  // zeroed
  EXPECT_DEATH(EstimateConfigSpeedup(caps, counters, DefaultCosts(),
                                     {smart::PlacementSpec::Interleaved(), false}, 1.0),
               "");
  auto ok = MemBoundCounters(caps);
  EXPECT_DEATH(EstimateConfigSpeedup(caps, ok, DefaultCosts(),
                                     {smart::PlacementSpec::Interleaved(), true}, 0.0),
               "");
}

}  // namespace
}  // namespace sa::adapt
