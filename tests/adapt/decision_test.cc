// Fig. 13 decision-diagram branches.
#include <gtest/gtest.h>

#include "adapt/decision.h"

namespace sa::adapt {
namespace {

MachineCaps EighteenCoreCaps() {
  return MachineCaps::FromSpec(sim::MachineSpec::OracleX5_18Core());
}

MachineCaps EightCoreCaps() { return MachineCaps::FromSpec(sim::MachineSpec::OracleX5_8Core()); }

// Counters typical of a memory-bound streaming scan on the profiling
// (interleaved, uncompressed) configuration.
WorkloadCounters StreamingCounters(const MachineCaps& caps) {
  WorkloadCounters c;
  c.exec_current_per_socket = caps.exec_max_per_socket * 0.25;
  c.bw_current_memory = std::min(caps.bw_max_memory, 2.0 * caps.bw_max_interconnect) * 0.95;
  c.max_mem_utilization = 0.95;
  c.max_ic_utilization = 0.9;
  c.accesses_per_second = c.bw_current_memory * 2 / 8.0;
  c.elem_bytes = 8.0;
  c.dataset_bytes = 8e9;
  c.random_fraction = 0.0;
  return c;
}

ArrayCosts Costs() { return ArrayCosts::FromCostModel(sim::CostModel::Default()); }

SoftwareHints ReadOnlyHints() {
  SoftwareHints h;
  h.read_only = true;
  h.mostly_reads = true;
  h.linear_passes = 10.0;
  return h;
}

TEST(DecisionTest, NotMemoryBoundStaysInterleaved) {
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  counters.max_mem_utilization = 0.3;
  counters.max_ic_utilization = 0.2;
  EXPECT_EQ(SelectPlacementUncompressed(caps, ReadOnlyHints(), counters, true).kind,
            smart::Placement::kInterleaved);
  // And compression buys nothing without a bandwidth bottleneck.
  EXPECT_FALSE(SelectPlacementCompressed(caps, ReadOnlyHints(), counters, true, Costs(), 0.5).has_value());
}

TEST(DecisionTest, ReadOnlyMemoryBoundWithSpaceReplicates) {
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  EXPECT_EQ(SelectPlacementUncompressed(caps, ReadOnlyHints(), counters, true).kind,
            smart::Placement::kReplicated);
}

TEST(DecisionTest, NoSpaceFallsBackFromReplication) {
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  const auto placement =
      SelectPlacementUncompressed(caps, ReadOnlyHints(), counters, /*space=*/false);
  EXPECT_NE(placement.kind, smart::Placement::kReplicated);
}

TEST(DecisionTest, WritableDataNeverReplicates) {
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  SoftwareHints hints = ReadOnlyHints();
  hints.read_only = false;
  EXPECT_NE(SelectPlacementUncompressed(caps, hints, counters, true).kind,
            smart::Placement::kReplicated);
}

TEST(DecisionTest, SinglePassDataDoesNotAmortizeReplicas) {
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  SoftwareHints hints = ReadOnlyHints();
  hints.linear_passes = 1.0;
  EXPECT_NE(SelectPlacementUncompressed(caps, hints, counters, true).kind,
            smart::Placement::kReplicated);
}

TEST(DecisionTest, SingleSocketWhenLocalSpeedupDominates) {
  // On the 8-core machine (remote bandwidth far below local), a workload
  // currently running well under the local channel peak favours pinning.
  auto caps = EightCoreCaps();
  WorkloadCounters counters;
  counters.exec_current_per_socket = caps.exec_max_per_socket * 0.2;
  counters.bw_current_memory = caps.bw_max_memory * 0.35;  // interleave-throttled
  counters.max_mem_utilization = 0.9;
  counters.max_ic_utilization = 0.95;
  counters.accesses_per_second = 1e9;
  counters.dataset_bytes = 8e9;
  SoftwareHints hints = ReadOnlyHints();
  hints.linear_passes = 1.0;  // replication not amortized
  const auto placement = SelectPlacementUncompressed(caps, hints, counters, true);
  EXPECT_EQ(placement.kind, smart::Placement::kSingleSocket);
}

TEST(DecisionTest, AllLocalConditionFollowsPaperFormula) {
  // Hand-computable caps: exec headroom 2x; bw_max 50, ic 10, current 20
  // (after scale 1.0): local = min(2, (50-10)/20)=2 -> capped at 2;
  // remote = 10/20 = 0.5; avg = 1.25 > 1 -> single socket wins.
  MachineCaps caps;
  caps.sockets = 2;
  caps.mem_bytes_per_socket = 100e9;
  caps.exec_max_per_socket = 2e9;
  caps.bw_max_memory = 50e9;
  caps.bw_max_interconnect = 10e9;
  WorkloadCounters counters;
  counters.exec_current_per_socket = 1e9;
  counters.bw_current_memory = 20e9;
  counters.max_mem_utilization = 1.0;
  counters.max_ic_utilization = 1.0;
  EXPECT_TRUE(AllLocalSpeedupBeatsRemoteSlowdown(caps, counters));

  // Raise current bandwidth: local improvement shrinks below break-even.
  counters.bw_current_memory = 45e9;  // local = (50-10)/45 = 0.89, remote = 0.22
  EXPECT_FALSE(AllLocalSpeedupBeatsRemoteSlowdown(caps, counters));
}

TEST(DecisionTest, CompressedDiagramRespectsWriteIntent) {
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  SoftwareHints hints = ReadOnlyHints();
  hints.mostly_reads = false;
  EXPECT_FALSE(SelectPlacementCompressed(caps, hints, counters, true, Costs(), 0.5).has_value());
}

TEST(DecisionTest, CompressedDiagramAvoidsRandomHeavyWorkloads) {
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  counters.random_fraction = 0.8;
  SoftwareHints hints = ReadOnlyHints();
  hints.random_passes = 5.0;
  hints.linear_passes = 1.0;
  EXPECT_FALSE(SelectPlacementCompressed(caps, hints, counters, true, Costs(), 0.5).has_value());
}

TEST(DecisionTest, CompressionEnablesReplicationWhenUncompressedDoesNotFit) {
  // §6.1: "compression can make replication possible where uncompressed
  // data would not fit."
  auto caps = EighteenCoreCaps();
  auto counters = StreamingCounters(caps);
  counters.dataset_bytes = caps.mem_bytes_per_socket;  // uncompressed: too big
  EXPECT_FALSE(SpaceForReplication(caps, counters, 0.3, /*compressed=*/false));
  EXPECT_TRUE(SpaceForReplication(caps, counters, 0.3, /*compressed=*/true));
  const auto uncompressed = SelectPlacementUncompressed(
      caps, ReadOnlyHints(), counters,
      SpaceForReplication(caps, counters, 0.3, false));
  const auto compressed =
      SelectPlacementCompressed(caps, ReadOnlyHints(), counters,
                                SpaceForReplication(caps, counters, 0.3, true), Costs(), 0.3);
  EXPECT_NE(uncompressed.kind, smart::Placement::kReplicated);
  ASSERT_TRUE(compressed.has_value());
  EXPECT_EQ(compressed->kind, smart::Placement::kReplicated);
}

}  // namespace
}  // namespace sa::adapt
