#include <map>

#include <gtest/gtest.h>

#include "collections/smart_map.h"
#include "common/random.h"

namespace sa::collections {
namespace {

TEST(SmartMapTest, LookupsMatchStdMap) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  Xoshiro256 rng(21);
  std::vector<std::pair<uint64_t, uint64_t>> pairs(5000);
  std::map<uint64_t, uint64_t> reference;
  for (auto& [k, v] : pairs) {
    k = rng.Below(1 << 20);
    v = rng.Below(1 << 16);
    reference[k] = v;
  }
  // Later duplicates overwrite: replay in order for the reference too.
  for (const auto& [k, v] : pairs) {
    reference[k] = v;
  }
  SmartMap map(pairs, smart::PlacementSpec::Interleaved(), topo);
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [k, v] : reference) {
    const auto got = map.Get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    ASSERT_EQ(*got, v) << "key " << k;
  }
  for (uint64_t probe = (1 << 20); probe < (1 << 20) + 1000; ++probe) {
    ASSERT_FALSE(map.Get(probe).has_value());
  }
}

TEST(SmartMapTest, DuplicateKeysKeepLastValue) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  const std::vector<std::pair<uint64_t, uint64_t>> pairs = {{7, 1}, {7, 2}, {7, 3}};
  SmartMap map(pairs, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Get(7), 3u);
}

TEST(SmartMapTest, ZeroKeyAndZeroValueWork) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  const std::vector<std::pair<uint64_t, uint64_t>> pairs = {{0, 0}, {1, 0}, {0, 9}};
  SmartMap map(pairs, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_EQ(map.Get(0), 9u);
  EXPECT_EQ(map.Get(1), 0u);
  EXPECT_FALSE(map.Get(2).has_value());
}

TEST(SmartMapTest, CapacityIsPowerOfTwoRespectingLoadFactor) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  std::vector<std::pair<uint64_t, uint64_t>> pairs(1000);
  for (uint64_t i = 0; i < 1000; ++i) {
    pairs[i] = {i, i};
  }
  SmartMap map(pairs, smart::PlacementSpec::OsDefault(), topo, /*load_factor=*/0.5);
  EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
  EXPECT_GE(map.capacity(), 2000u);
}

TEST(SmartMapTest, ProbeLengthsStayShortAtLowLoad) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  Xoshiro256 rng(22);
  std::vector<std::pair<uint64_t, uint64_t>> pairs(10'000);
  for (auto& [k, v] : pairs) {
    k = rng();
    v = 1;
  }
  SmartMap map(pairs, smart::PlacementSpec::OsDefault(), topo, /*load_factor=*/0.5);
  // Linear probing at load 0.5: expected probe length ~1.5.
  EXPECT_LT(map.average_probe_length(), 2.5);
}

TEST(SmartMapTest, PayloadIsCompressed) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  std::vector<std::pair<uint64_t, uint64_t>> pairs(4096);
  for (uint64_t i = 0; i < pairs.size(); ++i) {
    pairs[i] = {i, i % 16};
  }
  SmartMap map(pairs, smart::PlacementSpec::OsDefault(), topo);
  // keys <= 12 bits, values <= 4 bits, occupancy 1 bit: far below 3x64-bit.
  EXPECT_LT(map.footprint_bytes(), map.capacity() * 8);
}

TEST(SmartMapTest, ReplicatedLookupsFromBothSockets) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  std::vector<std::pair<uint64_t, uint64_t>> pairs = {{1, 10}, {2, 20}};
  SmartMap map(pairs, smart::PlacementSpec::Replicated(), topo);
  for (const int socket : {0, 1}) {
    EXPECT_EQ(map.Get(1, socket), 10u);
    EXPECT_EQ(map.Get(2, socket), 20u);
    EXPECT_FALSE(map.Get(3, socket).has_value());
  }
}

TEST(SmartMapDeathTest, RejectsBadArguments) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  const std::vector<std::pair<uint64_t, uint64_t>> empty;
  EXPECT_DEATH(SmartMap(empty, smart::PlacementSpec::OsDefault(), topo), "empty");
  const std::vector<std::pair<uint64_t, uint64_t>> one = {{1, 1}};
  EXPECT_DEATH(SmartMap(one, smart::PlacementSpec::OsDefault(), topo, 0.95), "load factor");
}

}  // namespace
}  // namespace sa::collections
