#include <set>

#include <gtest/gtest.h>

#include "collections/smart_set.h"
#include "common/random.h"

namespace sa::collections {
namespace {

class SmartSetTest : public ::testing::TestWithParam<SetLayout> {
 protected:
  SmartSetTest() : topo_(platform::Topology::Synthetic(2, 2)) {}
  platform::Topology topo_;
};

TEST_P(SmartSetTest, MembershipMatchesStdSet) {
  Xoshiro256 rng(11);
  std::vector<uint64_t> values(5000);
  std::set<uint64_t> reference;
  for (auto& v : values) {
    v = rng.Below(20'000);
    reference.insert(v);
  }
  SmartSet set(values, GetParam(), smart::PlacementSpec::Interleaved(), topo_);
  EXPECT_EQ(set.size(), reference.size());
  for (uint64_t probe = 0; probe < 20'000; probe += 3) {
    ASSERT_EQ(set.Contains(probe), reference.count(probe) > 0) << "probe " << probe;
  }
}

TEST_P(SmartSetTest, DuplicatesRemoved) {
  SmartSet set({5, 5, 5, 5}, GetParam(), smart::PlacementSpec::OsDefault(), topo_);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(4));
}

TEST_P(SmartSetTest, SingleElementAndExtremes) {
  SmartSet set({0, ~uint64_t{0}, 1}, GetParam(), smart::PlacementSpec::OsDefault(), topo_);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_TRUE(set.Contains(~uint64_t{0}));
  EXPECT_FALSE(set.Contains(2));
  EXPECT_EQ(set.bits(), 64u);
}

TEST_P(SmartSetTest, ToSortedVectorIsSortedAndComplete) {
  Xoshiro256 rng(12);
  std::vector<uint64_t> values(300);
  std::set<uint64_t> reference;
  for (auto& v : values) {
    v = rng.Below(10'000);
    reference.insert(v);
  }
  SmartSet set(values, GetParam(), smart::PlacementSpec::OsDefault(), topo_);
  const auto sorted = set.ToSortedVector();
  EXPECT_EQ(sorted, std::vector<uint64_t>(reference.begin(), reference.end()));
}

TEST_P(SmartSetTest, ReplicatedReadsFromBothSockets) {
  std::vector<uint64_t> values = {10, 20, 30};
  SmartSet set(values, GetParam(), smart::PlacementSpec::Replicated(), topo_);
  for (const int socket : {0, 1}) {
    EXPECT_TRUE(set.Contains(20, socket));
    EXPECT_FALSE(set.Contains(25, socket));
  }
}

TEST_P(SmartSetTest, PayloadIsBitCompressed) {
  std::vector<uint64_t> values(1000);
  for (uint64_t i = 0; i < 1000; ++i) {
    values[i] = i;  // 10-bit values
  }
  SmartSet set(values, GetParam(), smart::PlacementSpec::OsDefault(), topo_);
  EXPECT_EQ(set.bits(), 10u);
  EXPECT_LT(set.footprint_bytes(), 1000 * 8 / 4u);  // far below 64-bit storage
}

INSTANTIATE_TEST_SUITE_P(Layouts, SmartSetTest,
                         ::testing::Values(SetLayout::kSorted, SetLayout::kEytzinger),
                         [](const auto& info) { return std::string(ToString(info.param)); });

TEST(SmartSetRangeTest, CountRangeMatchesReference) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  Xoshiro256 rng(13);
  std::vector<uint64_t> values(2000);
  std::set<uint64_t> reference;
  for (auto& v : values) {
    v = rng.Below(5000);
    reference.insert(v);
  }
  SmartSet set(values, SetLayout::kSorted, smart::PlacementSpec::OsDefault(), topo);
  for (const auto [lo, hi] : {std::pair<uint64_t, uint64_t>{0, 4999},
                              {100, 200},
                              {4999, 4999},
                              {300, 299},
                              {0, 0}}) {
    uint64_t want = 0;
    for (uint64_t v : reference) {
      want += (v >= lo && v <= hi) ? 1 : 0;
    }
    EXPECT_EQ(set.CountRange(lo, hi), want) << "[" << lo << ", " << hi << "]";
  }
}

TEST(SmartSetRangeTest, CountRangeRejectsEytzinger) {
  const auto topo = platform::Topology::Synthetic(1, 2);
  SmartSet set({1, 2, 3}, SetLayout::kEytzinger, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_DEATH(set.CountRange(1, 2), "sorted");
}

TEST(SmartSetLayoutTest, LayoutsAgreeOnLargeRandomSets) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  Xoshiro256 rng(14);
  std::vector<uint64_t> values(20'000);
  for (auto& v : values) {
    v = rng();
  }
  SmartSet sorted(values, SetLayout::kSorted, smart::PlacementSpec::OsDefault(), topo);
  SmartSet eytzinger(values, SetLayout::kEytzinger, smart::PlacementSpec::OsDefault(), topo);
  EXPECT_EQ(sorted.size(), eytzinger.size());
  Xoshiro256 probe_rng(15);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t probe = i % 2 == 0 ? values[probe_rng.Below(values.size())] : probe_rng();
    ASSERT_EQ(sorted.Contains(probe), eytzinger.Contains(probe));
  }
}

}  // namespace
}  // namespace sa::collections
