// C-ABI surface of the §7 collections and encodings.
#include <vector>

#include <gtest/gtest.h>

#include "collections/entry_points.h"
#include "common/random.h"
#include "smart/entry_points.h"

namespace {

class CollectionsAbiTest : public ::testing::Test {
 protected:
  void SetUp() override { saSetDefaultTopology(2, 2); }
  void TearDown() override { saSetDefaultTopology(0, 0); }
};

TEST_F(CollectionsAbiTest, EncodedArrayRoundTrip) {
  std::vector<uint64_t> values(5000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = (i / 500) % 4;  // long runs
  }
  void* ea = saEncodedCreate(values.data(), values.size(), /*encoding=*/-1, 0, 1, -1);
  ASSERT_NE(ea, nullptr);
  EXPECT_EQ(saEncodedKind(ea), 2);  // auto-selected run-length
  EXPECT_EQ(saEncodedLength(ea), values.size());
  EXPECT_GT(saEncodedFootprintBytes(ea), 0u);
  for (uint64_t i = 0; i < values.size(); i += 101) {
    EXPECT_EQ(saEncodedGet(ea, i), values[i]);
  }
  std::vector<uint64_t> out(1000);
  saEncodedDecode(ea, 2000, 3000, out.data());
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(out[i], values[2000 + i]);
  }
  saEncodedFree(ea);
}

TEST_F(CollectionsAbiTest, ForcedEncodingIsHonored) {
  std::vector<uint64_t> values = {1, 2, 3, 4, 5};
  for (int encoding = 0; encoding <= 3; ++encoding) {
    void* ea = saEncodedCreate(values.data(), values.size(), encoding, 0, 0, -1);
    EXPECT_EQ(saEncodedKind(ea), encoding);
    EXPECT_EQ(saEncodedGet(ea, 2), 3u);
    saEncodedFree(ea);
  }
}

TEST_F(CollectionsAbiTest, SetMembershipBothLayouts) {
  sa::Xoshiro256 rng(8);
  std::vector<uint64_t> values(2000);
  for (auto& v : values) {
    v = rng.Below(10'000);
  }
  for (const int layout : {0, 1}) {
    void* set = saSetCreate(values.data(), values.size(), layout, /*replicated=*/1, 0, -1);
    ASSERT_NE(set, nullptr);
    EXPECT_GT(saSetSize(set), 0u);
    EXPECT_LE(saSetSize(set), values.size());
    for (const uint64_t v : values) {
      ASSERT_EQ(saSetContains(set, v), 1);
    }
    EXPECT_EQ(saSetContains(set, 999'999), 0);
    EXPECT_GT(saSetFootprintBytes(set), 0u);
    saSetFree(set);
  }
}

TEST_F(CollectionsAbiTest, MapLookups) {
  std::vector<uint64_t> keys = {10, 20, 30, 20};  // duplicate key: last wins
  std::vector<uint64_t> values = {1, 2, 3, 9};
  void* map = saMapCreate(keys.data(), values.data(), keys.size(), 0, 1, -1);
  EXPECT_EQ(saMapSize(map), 3u);
  uint64_t out = 0;
  ASSERT_EQ(saMapGet(map, 20, &out), 1);
  EXPECT_EQ(out, 9u);
  ASSERT_EQ(saMapGet(map, 10, &out), 1);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(saMapGet(map, 40, &out), 0);
  saMapFree(map);
}

TEST_F(CollectionsAbiTest, PlacementFlagsValidated) {
  std::vector<uint64_t> values = {1, 2, 3};
  EXPECT_DEATH(saSetCreate(values.data(), values.size(), 0, 1, 1, -1), "combined");
  EXPECT_DEATH(saEncodedCreate(values.data(), values.size(), 9, 0, 0, -1), "encoding");
}

}  // namespace
