// Cross-module integration: the full pipeline a user of the library runs —
// generate data, store it in smart arrays under an adaptively chosen
// configuration, execute analytics through the runtime, and cross-check
// everything against serial references.
#include <gtest/gtest.h>

#include "adapt/cases.h"
#include "common/random.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "interop/access_paths.h"
#include "smart/entry_points.h"
#include "smart/parallel_ops.h"

namespace {

TEST(EndToEndTest, AggregationPipelineAcrossAllPlacements) {
  const auto topo = sa::platform::Topology::Synthetic(2, 2);
  sa::rts::WorkerPool pool(topo,
                           sa::rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  constexpr uint64_t kN = 200'000;
  constexpr uint32_t kBits = 33;
  const uint64_t mask = sa::LowMask(kBits);

  // The paper's dataset formula (§5.1).
  auto gen = [mask](uint64_t i) { return (i + sa::SplitMix64(i) % 3) & mask; };
  uint64_t want = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    want += 2 * gen(i);
  }

  for (const auto& placement :
       {sa::smart::PlacementSpec::OsDefault(), sa::smart::PlacementSpec::SingleSocket(1),
        sa::smart::PlacementSpec::Interleaved(), sa::smart::PlacementSpec::Replicated()}) {
    auto a1 = sa::smart::SmartArray::Allocate(kN, placement, kBits, topo);
    auto a2 = sa::smart::SmartArray::Allocate(kN, placement, kBits, topo);
    sa::smart::ParallelFill(pool, *a1, gen);
    sa::smart::ParallelFill(pool, *a2, gen);
    EXPECT_EQ(sa::smart::ParallelSum2(pool, *a1, *a2), want) << ToString(placement);
  }
}

TEST(EndToEndTest, GraphAnalyticsOnAdaptivelyChosenConfiguration) {
  const auto topo = sa::platform::Topology::Synthetic(2, 2);
  sa::rts::WorkerPool pool(topo,
                           sa::rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  const auto csr = sa::graph::PowerLawGraph(1500, 12'000, 0.5, 4);

  // Ask the adaptivity layer what to do for a degree-centrality-like
  // streaming scan on the 8-core machine model.
  sa::adapt::CaseGridOptions grid;
  grid.bit_widths = {sa::BitsForValue(csr.num_edges())};
  grid.scenarios = {sa::adapt::MemoryScenario::kPlenty};
  const auto cases =
      sa::adapt::BuildDegreeCentralityCases(sa::sim::MachineSpec::OracleX5_8Core(), grid);
  ASSERT_FALSE(cases.empty());
  const auto decision = sa::adapt::ChooseConfiguration(cases.front().inputs);

  // Apply the decision to real storage and run the real kernel.
  sa::graph::SmartGraphOptions options;
  options.placement = decision.chosen.placement;
  options.compress_indexes = decision.chosen.compressed;
  sa::graph::SmartCsrGraph smart_graph(csr, options, topo, pool);
  auto out = sa::smart::SmartArray::Allocate(csr.num_vertices(),
                                             sa::smart::PlacementSpec::Interleaved(), 64, topo);
  sa::graph::DegreeCentralitySmart(pool, smart_graph, out.get());

  const auto want = sa::graph::DegreeCentrality(csr);
  for (sa::graph::VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(out->Get(v, out->GetReplica(0)), want[v]);
  }
}

TEST(EndToEndTest, EntryPointsDriveTheSameStorageAsNativeApi) {
  saSetDefaultTopology(2, 2);
  void* sa = saArrayAllocate(10'000, /*replicated=*/1, 0, -1, 21);
  const uint64_t mask = sa::LowMask(21);
  for (uint64_t i = 0; i < 10'000; ++i) {
    saArrayInitWithBits(sa, i, (i * 5) & mask, 21);
  }
  // Native-side view of the same object.
  auto* native = static_cast<sa::smart::SmartArray*>(sa);
  EXPECT_EQ(native->length(), 10'000u);
  EXPECT_TRUE(native->replicated());
  uint64_t native_sum = 0;
  for (uint64_t i = 0; i < native->length(); ++i) {
    native_sum += native->Get(i, native->GetReplica(0));
  }
  // Foreign-side aggregation through the inlined smart path.
  EXPECT_EQ(sa::interop::AggregateViaSmartArray(*native), native_sum);
  saArrayFree(sa);
  saSetDefaultTopology(0, 0);
}

TEST(EndToEndTest, ManagedAndNativeWorldsAgreeOnGraphResults) {
  // Managed runtime aggregates a degree-centrality output array produced by
  // the native parallel kernel — the PGX-on-GraalVM shape.
  const auto topo = sa::platform::Topology::Synthetic(2, 2);
  sa::rts::WorkerPool pool(topo,
                           sa::rts::WorkerPool::Options{.num_threads = 4, .pin_threads = false});
  const auto csr = sa::graph::UniformRandomGraph(4000, 3, 8);
  sa::graph::SmartCsrGraph smart_graph(csr, {}, topo, pool);
  auto out = sa::smart::SmartArray::Allocate(csr.num_vertices(),
                                             sa::smart::PlacementSpec::Interleaved(), 64, topo);
  sa::graph::DegreeCentralitySmart(pool, smart_graph, out.get());

  // 2 * |E| when summed — computed through the managed JNI path.
  sa::interop::ManagedRuntime vm;
  sa::interop::BoundaryEnv env(vm);
  const auto ref = env.RegisterNativeArray(out->GetReplica(0), out->length());
  const uint64_t sum = sa::interop::AggregateViaJniRegion(env, ref, out->length());
  EXPECT_EQ(sum, 2 * csr.num_edges());
}

}  // namespace
