// Differential fuzzing: long random operation sequences executed against
// both the smart-array stack and plain std:: references, with seeds swept
// by TEST_P. Catches interaction bugs the targeted unit tests miss.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "encodings/encoded_array.h"
#include "smart/map_api.h"
#include "smart/randomization.h"
#include "smart/smart_array.h"

namespace {

using sa::Xoshiro256;

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  uint64_t seed() const { return GetParam(); }
};

TEST_P(DifferentialTest, SmartArrayAgainstVectorUnderRandomOps) {
  Xoshiro256 rng(seed());
  const auto topo = sa::platform::Topology::Synthetic(2, 2);
  const uint64_t n = 200 + rng.Below(2000);
  const uint32_t bits = 1 + static_cast<uint32_t>(rng.Below(64));
  const uint64_t mask = sa::LowMask(bits);

  auto array = sa::smart::SmartArray::Allocate(
      n,
      rng.Below(2) ? sa::smart::PlacementSpec::Replicated()
                   : sa::smart::PlacementSpec::Interleaved(),
      bits, topo);
  std::vector<uint64_t> reference(n, 0);

  for (int op = 0; op < 3000; ++op) {
    const uint64_t i = rng.Below(n);
    switch (rng.Below(4)) {
      case 0: {  // write
        const uint64_t v = rng() & mask;
        array->Init(i, v);
        reference[i] = v;
        break;
      }
      case 1: {  // atomic write
        const uint64_t v = rng() & mask;
        array->InitAtomic(i, v);
        reference[i] = v;
        break;
      }
      case 2: {  // point read
        ASSERT_EQ(array->Get(i, array->GetReplica(static_cast<int>(rng.Below(2)))),
                  reference[i])
            << "seed " << seed() << " op " << op;
        break;
      }
      default: {  // ranged map() read
        const uint64_t j = i + rng.Below(n - i);
        uint64_t want = 0;
        for (uint64_t k = i; k <= j; ++k) {
          want += reference[k];
        }
        const uint64_t got = sa::smart::MapReduceRange(
            *array, i, j + 1, 0, [](uint64_t v, uint64_t) { return v; });
        ASSERT_EQ(got, want) << "seed " << seed() << " range [" << i << "," << j << "]";
        break;
      }
    }
  }
}

TEST_P(DifferentialTest, EncodingsAgreeWithEachOtherOnRandomData) {
  Xoshiro256 rng(seed() ^ 0xE2C0D1);
  const auto topo = sa::platform::Topology::Synthetic(2, 2);
  const uint64_t n = 100 + rng.Below(3000);
  // Data with mixed character: runs, jumps, clusters.
  std::vector<uint64_t> values(n);
  uint64_t current = rng() & sa::LowMask(40);
  for (auto& v : values) {
    if (rng.Below(5) == 0) {
      current = rng() & sa::LowMask(40);
    } else if (rng.Below(3) == 0) {
      current += rng.Below(16);
    }
    v = current;
  }
  std::vector<std::unique_ptr<sa::encodings::EncodedArray>> arrays;
  for (const auto e :
       {sa::encodings::Encoding::kBitPacked, sa::encodings::Encoding::kDictionary,
        sa::encodings::Encoding::kRunLength, sa::encodings::Encoding::kFrameOfReference}) {
    arrays.push_back(sa::encodings::EncodedArray::Encode(
        values, e, sa::smart::PlacementSpec::Interleaved(), topo));
  }
  for (int probe = 0; probe < 500; ++probe) {
    const uint64_t i = rng.Below(n);
    for (const auto& array : arrays) {
      ASSERT_EQ(array->Get(i, 0), values[i])
          << ToString(array->encoding()) << " seed " << seed() << " index " << i;
    }
  }
  // Full-scan agreement.
  std::vector<uint64_t> out(n);
  for (const auto& array : arrays) {
    array->Decode(0, n, 0, out.data());
    ASSERT_EQ(out, values) << ToString(array->encoding()) << " seed " << seed();
  }
}

TEST_P(DifferentialTest, RandomizedViewIsJustAPermutedVector) {
  Xoshiro256 rng(seed() ^ 0xFACADE);
  const auto topo = sa::platform::Topology::Synthetic(2, 2);
  const uint64_t n = 64 + rng.Below(5000);
  const uint32_t bits = 8 + static_cast<uint32_t>(rng.Below(57));
  sa::smart::RandomizedArray array(n, sa::smart::PlacementSpec::Interleaved(), bits, topo,
                                   seed());
  std::vector<uint64_t> reference(n, 0);
  for (int op = 0; op < 2000; ++op) {
    const uint64_t i = rng.Below(n);
    if (rng.Below(2) == 0) {
      const uint64_t v = rng() & sa::LowMask(bits);
      array.Init(i, v);
      reference[i] = v;
    } else {
      ASSERT_EQ(array.Get(i), reference[i]) << "seed " << seed() << " index " << i;
    }
  }
  // The underlying storage is a permutation of the logical view: sums match.
  uint64_t logical_sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    logical_sum += reference[i];
  }
  uint64_t physical_sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    physical_sum += array.storage().Get(i, array.storage().GetReplica(0));
  }
  EXPECT_EQ(physical_sum, logical_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range<uint64_t>(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
