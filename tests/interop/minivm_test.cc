#include <gtest/gtest.h>

#include "interop/minivm.h"

namespace sa::interop {
namespace {

TEST(ManagedRuntimeTest, HeapAllocatesAndResolves) {
  ManagedRuntime vm;
  const Handle h = vm.NewLongArray(100);
  EXPECT_EQ(vm.Resolve(h).length, 100u);
  EXPECT_EQ(vm.Resolve(h).storage.size(), 100u);
  vm.Resolve(h).storage[42] = 7;
  EXPECT_EQ(vm.Resolve(h).storage[42], 7u);
}

TEST(ManagedRuntimeTest, HandlesAreRecycled) {
  ManagedRuntime vm;
  const Handle a = vm.NewLongArray(10);
  vm.FreeLongArray(a);
  const Handle b = vm.NewLongArray(20);
  EXPECT_EQ(a, b);  // free list reuse
  EXPECT_EQ(vm.Resolve(b).length, 20u);
}

TEST(ManagedRuntimeTest, ThreadStateTransitions) {
  ManagedRuntime vm;
  EXPECT_EQ(vm.thread_state(), ThreadState::kInManaged);
  vm.set_thread_state(ThreadState::kInNative);
  EXPECT_EQ(vm.thread_state(), ThreadState::kInNative);
}

TEST(InterpreterTest, AggregationProgramComputesSum) {
  ManagedRuntime vm;
  const Handle h = vm.NewLongArray(1000);
  uint64_t want = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    vm.Resolve(h).storage[i] = i * i;
    want += i * i;
  }
  const Program p = BuildAggregationProgram();
  EXPECT_EQ(Interpret(vm, p, {static_cast<uint64_t>(h), 1000}), want);
  EXPECT_FALSE(vm.pending_exception());
}

TEST(InterpreterTest, EmptyArraySumsToZero) {
  ManagedRuntime vm;
  const Handle h = vm.NewLongArray(0);
  const Program p = BuildAggregationProgram();
  EXPECT_EQ(Interpret(vm, p, {static_cast<uint64_t>(h), 0}), 0u);
}

TEST(InterpreterTest, OutOfBoundsRaisesManagedException) {
  ManagedRuntime vm;
  const Handle h = vm.NewLongArray(10);
  const Program p = BuildAggregationProgram();
  // Lie about the length: the bounds check must fire, not crash.
  EXPECT_EQ(Interpret(vm, p, {static_cast<uint64_t>(h), 20}), 0u);
  EXPECT_TRUE(vm.pending_exception());
}

TEST(InterpreterTest, SafepointFlagDoesNotCorruptExecution) {
  ManagedRuntime vm;
  const Handle h = vm.NewLongArray(100);
  for (uint64_t i = 0; i < 100; ++i) {
    vm.Resolve(h).storage[i] = 1;
  }
  vm.request_safepoint(true);
  const Program p = BuildAggregationProgram();
  EXPECT_EQ(Interpret(vm, p, {static_cast<uint64_t>(h), 100}), 100u);
  vm.request_safepoint(false);
}

TEST(TierProfileTest, BecomesHotAfterThreshold) {
  TierProfile profile(1000);
  EXPECT_FALSE(profile.hot());
  profile.RecordIterations(999);
  EXPECT_FALSE(profile.hot());
  profile.RecordIterations(1);
  EXPECT_TRUE(profile.hot());
}

}  // namespace
}  // namespace sa::interop
