// The five Fig. 3 access paths must all compute the same aggregate, and the
// boundary path must exhibit per-element transitions.
#include <gtest/gtest.h>

#include "common/random.h"
#include "interop/access_paths.h"
#include "platform/topology.h"
#include "smart/smart_array.h"

namespace sa::interop {
namespace {

class AccessPathsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.resize(kN);
    Xoshiro256 rng(11);
    want_ = 0;
    for (uint64_t i = 0; i < kN; ++i) {
      data_[i] = rng() & 0xFFFFFF;
      want_ += data_[i];
    }
    // Managed copy.
    managed_ = vm_.NewLongArray(kN);
    vm_.Resolve(managed_).storage = data_;
  }

  static constexpr uint64_t kN = 50'000;
  ManagedRuntime vm_;
  Handle managed_ = kNullHandle;
  std::vector<uint64_t> data_;
  uint64_t want_ = 0;
};

TEST_F(AccessPathsTest, NativeCpp) { EXPECT_EQ(AggregateNativeCpp(data_.data(), kN), want_); }

TEST_F(AccessPathsTest, ManagedCompiled) {
  EXPECT_EQ(AggregateManagedCompiled(vm_, managed_), want_);
}

TEST_F(AccessPathsTest, ManagedInterpreted) {
  EXPECT_EQ(AggregateManagedInterpreted(vm_, managed_), want_);
}

TEST_F(AccessPathsTest, JniPathCountsTransitions) {
  BoundaryEnv env(vm_);
  const NativeRef ref = env.RegisterNativeArray(data_.data(), kN);
  EXPECT_EQ(AggregateViaJni(env, ref, kN), want_);
  // One managed->native transition per element access.
  EXPECT_EQ(env.transitions(), kN);
  EXPECT_EQ(vm_.boundary_crossings(), kN);
  env.UnregisterNativeArray(ref);
}

TEST_F(AccessPathsTest, JniRegionPathBatchesTransitions) {
  BoundaryEnv env(vm_);
  const NativeRef ref = env.RegisterNativeArray(data_.data(), kN);
  EXPECT_EQ(AggregateViaJniRegion(env, ref, kN, 4096), want_);
  EXPECT_EQ(env.transitions(), (kN + 4095) / 4096);
  env.UnregisterNativeArray(ref);
}

TEST_F(AccessPathsTest, UnsafePath) { EXPECT_EQ(AggregateViaUnsafe(data_.data(), kN), want_); }

TEST_F(AccessPathsTest, SmartArrayPathAcrossWidths) {
  const auto topo = platform::Topology::Synthetic(2, 2);
  for (const uint32_t bits : {24u, 32u, 64u}) {
    auto array =
        smart::SmartArray::Allocate(kN, smart::PlacementSpec::Interleaved(), bits, topo);
    for (uint64_t i = 0; i < kN; ++i) {
      array->Init(i, data_[i]);
    }
    EXPECT_EQ(AggregateViaSmartArray(*array), want_) << "bits " << bits;
  }
}

TEST_F(AccessPathsTest, JniOutOfBoundsSetsException) {
  BoundaryEnv env(vm_);
  const NativeRef ref = env.RegisterNativeArray(data_.data(), kN);
  EXPECT_EQ(env.GetLongArrayElement(ref, kN + 5), 0u);
  EXPECT_TRUE(vm_.pending_exception());
  env.UnregisterNativeArray(ref);
}

TEST_F(AccessPathsTest, StaleNativeRefSetsException) {
  BoundaryEnv env(vm_);
  const NativeRef ref = env.RegisterNativeArray(data_.data(), kN);
  env.UnregisterNativeArray(ref);
  EXPECT_EQ(env.GetLongArrayElement(ref, 0), 0u);
  EXPECT_TRUE(vm_.pending_exception());
}

TEST_F(AccessPathsTest, TieringSwitchesFromInterpreterToCompiled) {
  TierProfile profile(2 * kN);  // hot after two interpreted runs
  EXPECT_EQ(AggregateTiered(vm_, managed_, profile), want_);  // interpreted
  EXPECT_FALSE(profile.hot());
  EXPECT_EQ(AggregateTiered(vm_, managed_, profile), want_);  // interpreted, now hot
  EXPECT_TRUE(profile.hot());
  EXPECT_EQ(AggregateTiered(vm_, managed_, profile), want_);  // compiled
}

}  // namespace
}  // namespace sa::interop
