#include <gtest/gtest.h>

#include "report/table.h"

namespace sa::report {
namespace {

TEST(TableTest, AlignsColumnsAndRules) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRule();
  t.AddRow({"longer-name", "22"});
  const std::string s = t.ToString();
  // Header, rule, row, rule, row.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Every line has the same length (fixed-width layout).
  size_t line_len = std::string::npos;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t nl = s.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const size_t len = nl - pos;
    if (line_len == std::string::npos) {
      line_len = len;
    }
    // Rows may have trailing spaces trimmed by construction; compare to the
    // rule width which is canonical.
    EXPECT_LE(len, line_len + 2);
    pos = nl + 1;
  }
}

TEST(TableDeathTest, RowWidthMustMatchHeader) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "width");
}

TEST(FormatTest, NumberHelpers) {
  EXPECT_EQ(Num(1.234, 1), "1.2");
  EXPECT_EQ(Num(1.25, 2), "1.25");
  EXPECT_EQ(Ms(0.1234), "123.4 ms");
  EXPECT_EQ(Sec(12.345), "12.35 s");
  EXPECT_EQ(Gbps(43.81), "43.8 GB/s");
  EXPECT_EQ(Giga(5.1e9), "5.1e9");
  EXPECT_EQ(Gib(1024.0 * 1024 * 1024), "1.00 GiB");
  EXPECT_EQ(Pct(0.872), "87.2%");
}

}  // namespace
}  // namespace sa::report
